package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"dpreverser/internal/appanalysis"
	"dpreverser/internal/vehicle"
)

// ToolVsAppRow reproduces §4.6's closing comparison: how many ECUs and
// ESVs a professional diagnostic tool exposes on a car versus how many of
// that car's quantities the best-matching telematics app can actually
// decode.
type ToolVsAppRow struct {
	Car      string
	Model    string
	App      string
	ToolECUs int
	ToolESVs int
	// AppFormulas is how many UDS/KWP formulas the app embeds in total.
	AppFormulas int
	// AppUsableESVs is how many of the car's identifiers those formulas
	// cover — the paper's finding: none ("this request message cannot be
	// discovered in any apps").
	AppUsableESVs int
}

// ToolVsApp runs the comparison for the paper's two subject cars, VW
// Passat (Carly for VAG) and Toyota Corolla (Carly for Toyota).
func ToolVsApp(runs []*CarRun) []ToolVsAppRow {
	pairs := map[string]string{
		"Car K": "Carly for VAG",
		"Car L": "Carly for Toyota",
	}
	apps := map[string][]appanalysis.Formula{}
	for _, app := range appanalysis.Corpus() {
		for _, want := range pairs {
			if app.Name == want {
				apps[app.Name] = appanalysis.Analyze(app)
			}
		}
	}
	var rows []ToolVsAppRow
	for _, run := range runs {
		appName, ok := pairs[run.Profile.Car]
		if !ok {
			continue
		}
		row := ToolVsAppRow{
			Car: run.Profile.Car, Model: run.Profile.Model, App: appName,
			ToolECUs: len(run.Vehicle.Bindings()),
			ToolESVs: run.Profile.NumFormulaESVs + run.Profile.NumEnumESVs,
		}
		formulas := apps[appName]
		row.AppFormulas = len(formulas)
		// A formula is usable on this car only if its response-prefix
		// condition names an identifier the car actually serves.
		ids := carIdentifiers(run.Vehicle)
		for _, f := range formulas {
			if id, ok := prefixIdentifier(f.Condition); ok && ids[id] {
				row.AppUsableESVs++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// carIdentifiers collects the response prefixes a car's proprietary
// identifiers would produce ("62 <did>" / "61 <local>").
func carIdentifiers(v *vehicle.Vehicle) map[string]bool {
	out := map[string]bool{}
	for _, b := range v.Bindings() {
		for _, did := range b.ECU.DIDs() {
			out[fmt.Sprintf("62 %02X %02X", byte(did>>8), byte(did))] = true
		}
		for _, lid := range b.ECU.Locals() {
			out[fmt.Sprintf("61 %02X", lid)] = true
		}
	}
	return out
}

// prefixIdentifier normalises an app formula's condition prefix to the
// identifier form carIdentifiers produces.
func prefixIdentifier(cond string) (string, bool) {
	parts := strings.Fields(cond)
	if len(parts) < 2 {
		return "", false
	}
	switch parts[0] {
	case "62":
		if len(parts) < 3 {
			return "", false
		}
		return "62 " + normHex(parts[1]) + " " + normHex(parts[2]), true
	case "61":
		return "61 " + normHex(parts[1]), true
	default:
		return "", false
	}
}

func normHex(s string) string {
	v, err := strconv.ParseUint(s, 16, 8)
	if err != nil {
		return s
	}
	return fmt.Sprintf("%02X", v)
}

// ToolVsAppMarkdown renders the comparison.
func ToolVsAppMarkdown(rows []ToolVsAppRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Model, fmt.Sprint(r.ToolECUs), fmt.Sprint(r.ToolESVs),
			r.App, fmt.Sprint(r.AppFormulas), fmt.Sprint(r.AppUsableESVs),
		})
	}
	return markdownTable([]string{
		"Vehicle", "ECUs via tool", "ESVs via tool",
		"Best app", "Formulas in app", "Car's ESVs decodable by app",
	}, out)
}
