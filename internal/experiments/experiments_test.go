package experiments

import (
	"strings"
	"testing"

	"dpreverser/internal/reverser"

	"dpreverser/internal/vehicle"
)

func quickOpts() Options { return Options{Quick: true, Seed: 3} }

// runCars runs a subset of the fleet once per test binary invocation.
func runCars(t *testing.T, cars ...string) []*CarRun {
	t.Helper()
	var runs []*CarRun
	for _, car := range cars {
		p, ok := vehicle.ProfileByCar(car)
		if !ok {
			t.Fatalf("unknown car %q", car)
		}
		run, err := RunCar(p, quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(run.Vehicle.Close)
		runs = append(runs, run)
	}
	return runs
}

func TestTable4ShapeMatchesPaper(t *testing.T) {
	rows, err := Table4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	autel, launch := rows[0], rows[1]
	if autel.Tool != "AUTEL 919" || launch.Tool != "LAUNCH X431" {
		t.Fatalf("rows = %+v", rows)
	}
	// Paper: 97.6% vs 85.0%. Accept the shape with slack.
	if autel.Precision() < 0.93 {
		t.Errorf("AUTEL precision = %.3f, want ≈0.976", autel.Precision())
	}
	if launch.Precision() < 0.70 || launch.Precision() > 0.95 {
		t.Errorf("LAUNCH precision = %.3f, want ≈0.85", launch.Precision())
	}
	if autel.Precision() <= launch.Precision() {
		t.Error("quality split inverted")
	}
	md := Table4Markdown(rows)
	if !strings.Contains(md, "AUTEL 919") {
		t.Error("markdown missing tool")
	}
}

func TestTable5AllOBDFormulasCorrect(t *testing.T) {
	runs := runCars(t, "Car P")
	rows := Table5(runs[0])
	if len(rows) != 7 {
		t.Fatalf("Table 5 rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		if !r.Correct {
			t.Errorf("%s (%s): recovered %q, truth %q", r.ESV, r.Request, r.SystemOutput, r.GroundTruth)
		}
	}
	md := Table5Markdown(rows)
	if !strings.Contains(md, "01 0C") {
		t.Error("markdown missing RPM request")
	}
}

func TestPrecisionGPBeatsBaselines(t *testing.T) {
	// Cars with nonlinear formulas: A (UDS with quadratic/sqrt codecs) and
	// C (KWP with product formulas).
	runs := runCars(t, "Car A", "Car C")
	rows := Precision(runs)
	total := PrecisionTotals(rows)
	if total.FormulaESVs == 0 {
		t.Fatal("no formula streams scored")
	}
	gpPrec := float64(total.CorrectGP) / float64(total.FormulaESVs)
	lrPrec := float64(total.CorrectLinear) / float64(total.FormulaESVs)
	if gpPrec < 0.85 {
		t.Errorf("GP precision = %.2f (%d/%d), want ≥0.85",
			gpPrec, total.CorrectGP, total.FormulaESVs)
	}
	// The paper's headline: GP ≫ linear regression (98.3% vs 43.8%).
	if total.CorrectGP <= total.CorrectLinear {
		t.Errorf("GP (%d) did not beat linear regression (%d)", total.CorrectGP, total.CorrectLinear)
	}
	_ = lrPrec
	if md := Table6Markdown(rows); !strings.Contains(md, "Total") {
		t.Error("table 6 markdown missing totals")
	}
	if md := Table10Markdown(rows); !strings.Contains(md, "Linear") {
		t.Error("table 10 markdown missing header")
	}
}

func TestTable7DashboardValidation(t *testing.T) {
	runs := runCars(t, "Car F")
	rows := Table7(runs)
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.Car != "Car F" || r.ESV != "Engine speed" {
		t.Fatalf("row = %+v", r)
	}
	if r.Formula == "" {
		t.Fatal("no formula recovered for the dashboard ESV")
	}
	if !r.Same {
		t.Errorf("dashboard validation failed: formula %q", r.Formula)
	}
	if md := Table7Markdown(rows); !strings.Contains(md, "Car F") {
		t.Error("markdown missing car")
	}
}

func TestTable8TimingShape(t *testing.T) {
	rows := Table8(quickOpts())
	if len(rows) != 2 || rows[0].Protocol != "UDS" || rows[1].Protocol != "KWP 2000" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		// The paper's shape: GP runs orders of magnitude slower than the
		// closed-form baselines.
		if r.GPSeconds <= r.LRSeconds*10 || r.GPSeconds <= r.PFSeconds*10 {
			t.Errorf("%s: GP %.4fs vs LR %.6fs / PF %.6fs — expected GP ≫ baselines",
				r.Protocol, r.GPSeconds, r.LRSeconds, r.PFSeconds)
		}
	}
	if md := Table8Markdown(rows); !strings.Contains(md, "Genetic") {
		t.Error("markdown header missing")
	}
}

func TestTable9FrameMixShape(t *testing.T) {
	runs := runCars(t, "Car A", "Car B", "Car C")
	rows := Table9(runs)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	udsRow, kwpRow := rows[0], rows[1]
	if udsRow.Total == 0 || kwpRow.Total == 0 {
		t.Fatalf("empty traffic: %+v", rows)
	}
	// Paper shape: UDS traffic is majority single-frame; KWP (VW TP 2.0)
	// traffic is majority must-wait frames.
	if udsRow.Single <= udsRow.Multi/2 {
		t.Errorf("UDS mix: single %d vs multi %d — expected substantial single share", udsRow.Single, udsRow.Multi)
	}
	if kwpRow.Multi <= kwpRow.Single {
		t.Errorf("KWP mix: waiting %d vs last %d — expected waiting majority", kwpRow.Multi, kwpRow.Single)
	}
	if md := Table9Markdown(rows); !strings.Contains(md, "KWP 2000") {
		t.Error("markdown missing protocol")
	}
}

func TestTable11ECRCounts(t *testing.T) {
	runs := runCars(t, "Car E", "Car H")
	rows := Table11(runs)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		p, _ := vehicle.ProfileByCar(r.Car)
		if r.NumECR != p.NumECRs {
			t.Errorf("%s: ECRs = %d, want %d", r.Car, r.NumECR, p.NumECRs)
		}
		if r.Complete != r.NumECR {
			t.Errorf("%s: complete patterns = %d of %d", r.Car, r.Complete, r.NumECR)
		}
	}
	if md := Table11Markdown(rows); !strings.Contains(md, "Total") {
		t.Error("markdown missing totals")
	}
}

func TestTable12MatchesPaper(t *testing.T) {
	rows := Table12()
	got := map[string]int{}
	for _, r := range rows {
		got[r.App+"/"+string(r.Kind)] = r.Formulas
	}
	// Spot checks against the paper's table.
	checks := map[string]int{
		"Carly for VAG/UDS":         90,
		"Carly for VAG/KWP 2000":    137,
		"Carly for Mercedes/UDS":    1624,
		"Carly for Toyota/KWP 2000": 7,
		"inCarDoc/OBD-II":           82,
		"Kiwi OBD/OBD-II":           3,
	}
	for key, want := range checks {
		if got[key] != want {
			t.Errorf("%s = %d, want %d", key, got[key], want)
		}
	}
	if md := Table12Markdown(rows); !strings.Contains(md, "Carly for VAG") {
		t.Error("markdown missing app")
	}
}

func TestTable13ReplaySucceeds(t *testing.T) {
	runs := runCars(t, "Car D")
	rows, err := Table13(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no replay rows")
	}
	for _, r := range rows {
		if !r.Success {
			t.Errorf("replay failed: %s %s (%s)", r.Car, r.Message, r.Function)
		}
	}
	if md := Table13Markdown(rows); !strings.Contains(md, "Car D") {
		t.Error("markdown missing car")
	}
}

func TestPlannerExperimentShape(t *testing.T) {
	rows := PlannerExperiment(50, 7)
	if len(rows) < 2 {
		t.Fatalf("rows = %+v", rows)
	}
	var nn, rnd float64
	for _, r := range rows {
		switch r.Strategy {
		case "Nearest neighbour":
			nn = r.MeanTour
		case "Random order":
			rnd = r.MeanTour
		}
	}
	if nn <= 0 || rnd <= 0 || nn >= rnd {
		t.Fatalf("planner rows = %+v", rows)
	}
	savings := (rnd - nn) / rnd
	if savings < 0.04 {
		t.Errorf("NN savings = %.1f%%, paper reports ≈7.3%%", savings*100)
	}
	if md := PlannerMarkdown(rows); !strings.Contains(md, "Nearest") {
		t.Error("markdown missing strategy")
	}
}

func TestTruthForResolvesAllProtocols(t *testing.T) {
	runs := runCars(t, "Car C") // KWP car with OBD alignment traffic
	run := runs[0]
	kwpSeen, obdSeen := false, false
	for _, sd := range run.Streams {
		truth, ok := TruthFor(run.Vehicle, sd.Key)
		if !ok {
			t.Fatalf("no truth for %v", sd.Key)
		}
		if truth.Expr == "" {
			t.Fatalf("empty expr for %v", sd.Key)
		}
		switch sd.Key.Proto {
		case "KWP":
			kwpSeen = true
			// Truth must evaluate on the observed variables.
			if sd.Dataset != nil {
				v := truth.Decode(sd.Dataset.X[0])
				if v != v { // NaN
					t.Fatalf("truth NaN for %v", sd.Key)
				}
			}
		case "OBD":
			obdSeen = true
		}
	}
	if !kwpSeen || !obdSeen {
		t.Fatalf("stream mix incomplete: kwp=%v obd=%v", kwpSeen, obdSeen)
	}
}

func TestTruthForUnknownKey(t *testing.T) {
	runs := runCars(t, "Car M")
	var udsKey *reverser.StreamKey
	for _, sd := range runs[0].Streams {
		if sd.Key.Proto == "UDS" {
			k := sd.Key
			udsKey = &k
			break
		}
	}
	if udsKey == nil {
		t.Fatal("no UDS stream")
	}
	if _, ok := TruthFor(runs[0].Vehicle, *udsKey); !ok {
		t.Fatal("known key unresolved")
	}
	bad := *udsKey
	bad.RespID = 0xFFF // OBD keys ignore RespID; UDS keys must not
	if _, ok := TruthFor(runs[0].Vehicle, bad); ok {
		t.Fatal("unknown RespID resolved")
	}
}

func TestSecuredCarFleetRunRecoversECRs(t *testing.T) {
	// Car H's IO control sits behind security access; the tool unlocks and
	// the pipeline must still see the full three-message pattern.
	runs := runCars(t, "Car H")
	rows := Table11(runs)
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	p, _ := vehicle.ProfileByCar("Car H")
	if rows[0].NumECR != p.NumECRs || rows[0].Complete != p.NumECRs {
		t.Fatalf("secured car ECRs = %+v, want %d complete", rows[0], p.NumECRs)
	}
}

func TestToolVsAppComparison(t *testing.T) {
	runs := runCars(t, "Car K", "Car L")
	rows := ToolVsApp(runs)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.ToolESVs == 0 || r.ToolECUs == 0 {
			t.Fatalf("tool coverage empty: %+v", r)
		}
		if r.AppFormulas == 0 {
			t.Fatalf("app %s has no formulas", r.App)
		}
		// The paper's conclusion: none of the car's quantities are
		// decodable through the app's formulas.
		if r.AppUsableESVs != 0 {
			t.Fatalf("%s: app decodes %d of the car's ESVs, paper reports 0", r.Car, r.AppUsableESVs)
		}
	}
	if md := ToolVsAppMarkdown(rows); !strings.Contains(md, "Carly for VAG") {
		t.Fatal("markdown missing app")
	}
}

func TestAnalysisQuality(t *testing.T) {
	eval := AnalysisQuality()
	if eval.FP != 0 {
		t.Errorf("false positives = %d, want 0", eval.FP)
	}
	if p := eval.Precision(); p != 1.0 {
		t.Errorf("precision = %.3f, want 1.0", p)
	}
	if r := eval.Recall(); r <= 0.5 || r >= 1.0 {
		t.Errorf("recall = %.3f, want honest (0.5, 1.0) — known-miss styles must stay missed", r)
	}
	md := AnalysisQualityMarkdown(eval)
	for _, want := range []string{"helper split", "known miss", "Precision 1.000"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}
