package experiments

import (
	"fmt"

	"dpreverser/internal/appanalysis"
)

// AnalysisQuality scores the app-analysis engine against the labeled
// evaluation corpus. Unlike Table 12 (which reproduces the paper's
// per-app formula counts), this measures the engine itself: precision
// and recall of extracted formulas against ground truth, including the
// corpus styles the analysis is known to miss (field-mediated flows,
// unmodelled native helpers, recursion, unit-ambiguous joins).
func AnalysisQuality() *appanalysis.Evaluation {
	return appanalysis.Evaluate(appanalysis.EvalCorpus())
}

// AnalysisQualityMarkdown renders the evaluation as a per-style table
// followed by the aggregate precision/recall/F1 line.
func AnalysisQualityMarkdown(eval *appanalysis.Evaluation) string {
	var out [][]string
	for _, s := range eval.PerStyle {
		out = append(out, []string{
			s.Style,
			fmt.Sprint(s.Apps),
			fmt.Sprint(s.TP),
			fmt.Sprint(s.FP),
			fmt.Sprint(s.FN),
		})
	}
	out = append(out, []string{"**total**",
		fmt.Sprint(eval.Apps),
		fmt.Sprint(eval.TP),
		fmt.Sprint(eval.FP),
		fmt.Sprint(eval.FN),
	})
	table := markdownTable([]string{"Corpus Style", "Apps", "TP", "FP", "FN"}, out)
	return table + fmt.Sprintf("\nPrecision %.3f, Recall %.3f, F1 %.3f (%d labeled formulas)\n",
		eval.Precision(), eval.Recall(), eval.F1(), eval.TP+eval.FN)
}
