package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"dpreverser/internal/appanalysis"
	"dpreverser/internal/kwp"
	"dpreverser/internal/rig"
	"dpreverser/internal/uds"
	"dpreverser/internal/vehicle"
)

// --- Table 11: extracted ECRs per car ---

// Table11Row mirrors one row of Table 11.
type Table11Row struct {
	Car     string
	NumECR  int
	Service string
	// Complete counts ECRs whose three-message pattern was fully
	// observed.
	Complete int
}

// Table11 counts the control records recovered per car.
func Table11(runs []*CarRun) []Table11Row {
	var rows []Table11Row
	for _, run := range runs {
		if run.Profile.NumECRs == 0 {
			continue
		}
		row := Table11Row{Car: run.Profile.Car, Service: fmt.Sprintf("%02X", run.Profile.ECRService)}
		for _, e := range run.Result.ECRs {
			row.NumECR++
			if e.PatternComplete() {
				row.Complete++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Table11Markdown renders Table 11.
func Table11Markdown(rows []Table11Row) string {
	var out [][]string
	total := 0
	for _, r := range rows {
		total += r.NumECR
		out = append(out, []string{r.Car, fmt.Sprint(r.NumECR), r.Service, fmt.Sprint(r.Complete)})
	}
	out = append(out, []string{"Total", fmt.Sprint(total), "", ""})
	return markdownTable([]string{"Car", "#ECR", "Service ID", "#Complete pattern"}, out)
}

// --- Table 12: formulas in telematics apps ---

// Table12Row mirrors one row of Table 12.
type Table12Row struct {
	App      string
	Kind     appanalysis.FormulaKind
	Formulas int
}

// Table12 runs Algorithm 1 over the 160-app corpus.
func Table12() []Table12Row {
	var rows []Table12Row
	for _, app := range appanalysis.Corpus() {
		counts := appanalysis.CountByKind(appanalysis.Analyze(app))
		for _, kind := range []appanalysis.FormulaKind{appanalysis.KindUDS, appanalysis.KindKWP, appanalysis.KindOBD} {
			if counts[kind] > 0 {
				rows = append(rows, Table12Row{App: app.Name, Kind: kind, Formulas: counts[kind]})
			}
		}
	}
	return rows
}

// Table12Markdown renders Table 12.
func Table12Markdown(rows []Table12Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.App, string(r.Kind), fmt.Sprint(r.Formulas)})
	}
	return markdownTable([]string{"APP Name", "Formula Type", "# Formula"}, out)
}

// --- Table 13: replaying reversed messages ("attack" validation) ---

// Table13Row mirrors one row of Table 13.
type Table13Row struct {
	Car      string
	Message  string
	Function string
	Success  bool
}

// Table13Cars are the replay targets. The paper attacks BMW i3, Lexus
// NX300, Toyota Corolla and Kia; the simulated replay uses the fleet cars
// with recoverable control records closest to that set (BMW 532Li stands
// in for the i3 and Nissan Teana for the Corolla, whose profiles carry no
// ECRs in Table 11 — the paper's Table 13 messages for those cars came
// from a separate manual effort).
var Table13Cars = []string{"Car J", "Car D", "Car Q", "Car N"}

// Table13 replays reverse-engineered messages against fresh instances of
// the same vehicle models — the §9.3 experiment: rent the same car type,
// reverse engineer once, then inject. Success means the fresh vehicle
// (whose "engine is running": the clock keeps advancing) actually executed
// the read or actuation.
func Table13(runs []*CarRun) ([]Table13Row, error) {
	byCar := map[string]*CarRun{}
	for _, r := range runs {
		byCar[r.Profile.Car] = r
	}
	var rows []Table13Row
	for _, car := range Table13Cars {
		run, ok := byCar[car]
		if !ok {
			continue
		}
		carRows, err := replayCar(run)
		if err != nil {
			return nil, err
		}
		rows = append(rows, carRows...)
	}
	return rows, nil
}

// replayCar injects one car's reversed messages into a fresh vehicle.
func replayCar(run *CarRun) ([]Table13Row, error) {
	// "Rent a vehicle of the same type": fresh build, same profile.
	target := vehicle.Build(run.Profile, nil)
	defer target.Close()

	var rows []Table13Row
	// Replay up to two read messages.
	reads := 0
	for _, esv := range run.Result.ESVs {
		if esv.Key.Proto != "UDS" || esv.Enum || reads >= 2 {
			continue
		}
		req, err := uds.BuildRDBIRequest(esv.Key.DID)
		if err != nil {
			continue
		}
		ok := injectAndCheck(target, esv.Key.RespID, req, func(resp []byte) bool {
			return uds.IsPositiveResponse(resp, uds.SIDReadDataByIdentifier)
		})
		rows = append(rows, Table13Row{
			Car: run.Profile.Car, Message: hexBytes(req),
			Function: "Read " + strings.ToLower(esv.Label), Success: ok,
		})
		reads++
	}
	// Replay an ECU reset (Table 13's "Reset combination instrument"
	// rows): extended session, then ECUReset.
	if run.Profile.Protocol == vehicle.UDS {
		injectAndCheck(target, 0, []byte{uds.SIDDiagnosticSessionControl, uds.SessionExtended},
			func([]byte) bool { return true })
		ok := injectAndCheck(target, 0, []byte{uds.SIDECUReset, 0x01}, func(resp []byte) bool {
			return uds.IsPositiveResponse(resp, uds.SIDECUReset)
		})
		if ok {
			ok = false
			for _, e := range target.ECUs() {
				if e.Resets() > 0 {
					ok = true
				}
			}
		}
		rows = append(rows, Table13Row{
			Car: run.Profile.Car, Message: "11 01",
			Function: "Reset ECU", Success: ok,
		})
	}

	// Replay up to three control records with the recovered procedure.
	controls := 0
	for _, ecr := range run.Result.ECRs {
		if controls >= 3 || !ecr.PatternComplete() {
			continue
		}
		var adjust []byte
		var respCheck func([]byte) bool
		if ecr.Service == 0x2F {
			// Extended session, freeze, adjust. The attacker does not know
			// which ECU owns the record, so the injection probes every
			// binding until one answers positively (respID 0 = try all).
			prologue := [][]byte{
				{uds.SIDDiagnosticSessionControl, uds.SessionExtended},
				uds.BuildIOControlRequest(uds.IOControlRequest{DID: ecr.ID, Param: uds.IOFreezeCurrentState}),
			}
			for _, p := range prologue {
				injectAndCheck(target, 0, p, func([]byte) bool { return true })
			}
			adjust = uds.BuildIOControlRequest(uds.IOControlRequest{
				DID: ecr.ID, Param: uds.IOShortTermAdjustment, State: ecr.State,
			})
			respCheck = func(resp []byte) bool {
				return uds.IsPositiveResponse(resp, uds.SIDIOControlByIdentifier)
			}
		} else {
			adjust = append([]byte{kwp.SIDIOControlByLocalIdentifier, byte(ecr.ID), uds.IOShortTermAdjustment}, ecr.State...)
			respCheck = func(resp []byte) bool {
				return kwp.IsPositiveResponse(resp, kwp.SIDIOControlByLocalIdentifier)
			}
		}
		ok := injectAndCheck(target, 0, adjust, respCheck)
		// Verify the actuation physically happened on the fresh car.
		if ok {
			ok = actuatorDriven(target, ecr.Label)
		}
		rows = append(rows, Table13Row{
			Car: run.Profile.Car, Message: hexBytes(adjust),
			Function: "Control " + strings.ToLower(ecr.Label), Success: ok,
		})
		controls++
	}
	return rows, nil
}

// injectAndCheck opens a raw client to the ECU with the given response ID
// and sends one message.
func injectAndCheck(v *vehicle.Vehicle, respID uint32, req []byte, check func([]byte) bool) bool {
	for _, b := range v.Bindings() {
		if respID != 0 && b.RespID != respID {
			continue
		}
		client, err := vehicle.Connect(v, b)
		if err != nil {
			continue
		}
		resp, err := client.Request(req)
		client.Close()
		if err != nil {
			continue
		}
		if check(resp) {
			return true
		}
	}
	return false
}

// actuatorDriven checks the fresh vehicle's actuation log for the named
// component.
func actuatorDriven(v *vehicle.Vehicle, name string) bool {
	for _, e := range v.ECUs() {
		for _, ev := range e.Events() {
			if ev.Actuator == name {
				return true
			}
		}
	}
	return false
}

func hexBytes(b []byte) string {
	parts := make([]string, len(b))
	for i, by := range b {
		parts[i] = fmt.Sprintf("%02X", by)
	}
	return strings.Join(parts, " ")
}

// Table13Markdown renders Table 13.
func Table13Markdown(rows []Table13Row) string {
	var out [][]string
	for _, r := range rows {
		ok := "✓"
		if !r.Success {
			ok = "✗"
		}
		out = append(out, []string{r.Car, r.Message, r.Function, ok})
	}
	return markdownTable([]string{"Car", "Diagnostic Message", "Function", "Success"}, out)
}

// --- Planner experiment (§3.1's 7.3% claim) ---

// PlannerRow reports one planner comparison.
type PlannerRow struct {
	Strategy string
	// MeanTour is the average tour length in pixels over the trials.
	MeanTour float64
	// MeanTime is the average total clicking time (stylus travel at the
	// rig's speed plus the fixed per-click dwell) — the paper's metric:
	// "the nearest neighbor algorithm saves 7.3% time of moving".
	MeanTime float64
}

// Planner-time model. The paper's measurement (80.45s random vs 74.6s
// nearest-neighbour for 14 ESVs) implies ≈5.3s of fixed per-click overhead
// — stylus press, UI reaction, camera settle — on top of the travel, which
// is why its saving is 7.3% of *time* while the travel-distance saving is
// far larger.
const (
	plannerSpeedPxPerSec = 400.0
	plannerPerClickSecs  = 4.9 // press + UI reaction + settle per click
)

// PlannerExperiment compares nearest-neighbour click planning against
// random ordering when selecting 14 ESVs on a data-stream page (the
// paper's setup). Layouts are the tool's real selection-page geometry: a
// single column of items whose starting column is randomised per trial
// (pages render at different scroll offsets on real tools).
func PlannerExperiment(trials int, seed int64) []PlannerRow {
	rng := rand.New(rand.NewSource(seed))
	timeOf := func(start rig.Point, order []rig.Point) float64 {
		return rig.TourLength(start, order)/plannerSpeedPxPerSec +
			plannerPerClickSecs*float64(len(order))
	}
	var nnTour, rndTour, nnTime, rndTime float64
	for i := 0; i < trials; i++ {
		// The AUTEL-class page: 14 rows, 44px pitch, with per-row
		// horizontal jitter from variable text widths.
		baseX := 40 + rng.Intn(200)
		points := make([]rig.Point, 14)
		for j := range points {
			points[j] = rig.Point{X: baseX + rng.Intn(160), Y: 60 + 44*j}
		}
		rng.Shuffle(len(points), func(a, b int) { points[a], points[b] = points[b], points[a] })
		start := rig.Point{X: rng.Intn(1024), Y: rng.Intn(768)} // stylus park position
		nn := rig.NearestNeighbor(start, points)
		rnd := rig.RandomOrder(points, rng)
		nnTour += rig.TourLength(start, nn)
		rndTour += rig.TourLength(start, rnd)
		nnTime += timeOf(start, nn)
		rndTime += timeOf(start, rnd)
	}
	n := float64(trials)
	return []PlannerRow{
		{Strategy: "Nearest neighbour", MeanTour: nnTour / n, MeanTime: nnTime / n},
		{Strategy: "Random order", MeanTour: rndTour / n, MeanTime: rndTime / n},
	}
}

// PlannerMarkdown renders the planner comparison.
func PlannerMarkdown(rows []PlannerRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Strategy, fmt.Sprintf("%.0f px", r.MeanTour), fmt.Sprintf("%.2f s", r.MeanTime)})
	}
	return markdownTable([]string{"Click-ordering strategy", "Mean tour length", "Mean selection time"}, out)
}
