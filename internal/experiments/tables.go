package experiments

import (
	"fmt"
	"time"

	"dpreverser/internal/diagtool"
	"dpreverser/internal/gp"
	"dpreverser/internal/ocr"
	"dpreverser/internal/regress"
	"dpreverser/internal/reverser"
	"dpreverser/internal/sim"
	"dpreverser/internal/vehicle"
)

// --- Table 4: OCR precision per diagnostic tool ---

// Table4Row mirrors one row of Table 4.
type Table4Row struct {
	Tool      string
	TotalPics int
	Correct   int
}

// Precision reports the fraction of clean frames.
func (r Table4Row) Precision() float64 {
	if r.TotalPics == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.TotalPics)
}

// Table4 records 500 screenshots of a high-quality handheld (AUTEL 919 on
// Car L) and a low-quality one (LAUNCH X431 on Car A) and measures OCR
// frame precision.
func Table4(opt Options) ([]Table4Row, error) {
	const pics = 500
	cases := []struct {
		car  string
		tool string
		err  float64
	}{
		{"Car L", "AUTEL 919", ocr.HighQualityValueErr},
		{"Car A", "LAUNCH X431", ocr.LowQualityValueErr},
	}
	var rows []Table4Row
	for ci, c := range cases {
		p, ok := vehicle.ProfileByCar(c.car)
		if !ok {
			return nil, fmt.Errorf("table 4: unknown car %s", c.car)
		}
		clock := sim.NewClock(0)
		tool, veh, err := diagtool.ForProfile(p, clock)
		if err != nil {
			return nil, err
		}
		// Reach a live screen showing ~10 values, then film 500 frames.
		tool.ClickWidget("home.diag")
		tool.ClickWidget("ecu.0")
		tool.ClickWidget("func.stream")
		tool.SelectAllOnECU()
		tool.ClickWidget("sel.ok")
		engine := ocr.NewEngine(c.err, opt.Seed+int64(ci)*17+3)
		corrupted := 0
		for i := 0; i < pics; i++ {
			tool.Poll()
			clock.Advance(500 * time.Millisecond)
			f := engine.Recognize(tool.Screen(), clock.Now())
			if f.Corrupted {
				corrupted++
			}
		}
		rows = append(rows, Table4Row{Tool: c.tool, TotalPics: pics, Correct: pics - corrupted})
		tool.Close()
		veh.Close()
	}
	return rows, nil
}

// Table4Markdown renders Table 4.
func Table4Markdown(rows []Table4Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Tool, fmt.Sprint(r.TotalPics), fmt.Sprint(r.Correct), pct(r.Correct, r.TotalPics)}
	}
	return markdownTable([]string{"Diagnostic Tool", "#Total Pics", "#Correct Pics", "Precision"}, out)
}

// --- Table 5: OBD-II formula recovery ---

// Table5Row mirrors one row of Table 5.
type Table5Row struct {
	ESV          string
	Request      string
	GroundTruth  string
	SystemOutput string
	Correct      bool
}

// Table5 reverse engineers the seven standard OBD-II formulas and scores
// them against SAE J1979 — the experiment with perfect ground truth.
func Table5(run *CarRun) []Table5Row {
	var rows []Table5Row
	byKey := map[reverser.StreamKey]reverser.StreamData{}
	for _, sd := range run.Streams {
		byKey[sd.Key] = sd
	}
	for _, esv := range run.Result.ESVs {
		if esv.Key.Proto != "OBD" {
			continue
		}
		truth, ok := TruthFor(run.Vehicle, esv.Key)
		if !ok {
			continue
		}
		sd := byKey[esv.Key]
		correct := false
		if sd.Dataset != nil {
			correct = FormulaCorrect(esv.Formula, truth, sd.Dataset.X)
		}
		rows = append(rows, Table5Row{
			ESV:          esv.Label,
			Request:      fmt.Sprintf("01 %02X", byte(esv.Key.DID)),
			GroundTruth:  truth.Expr,
			SystemOutput: esv.FormulaString(),
			Correct:      correct,
		})
	}
	return rows
}

// Table5Markdown renders Table 5.
func Table5Markdown(rows []Table5Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		ok := "✓"
		if !r.Correct {
			ok = "✗"
		}
		out[i] = []string{r.ESV, r.Request, r.GroundTruth, r.SystemOutput, ok}
	}
	return markdownTable([]string{"ESV", "Request", "Formula (ground truth)", "Formula (system output)", "Correct"}, out)
}

// --- Tables 6 and 10: per-car inference precision, GP vs baselines ---

// PrecisionRow carries per-car inference results for one algorithm set
// (Table 6's GP column plus Table 10's baseline columns).
type PrecisionRow struct {
	Car string
	// FormulaESVs is the number of formula-bearing streams recovered.
	FormulaESVs int
	// CorrectGP / CorrectLinear / CorrectPoly count formulas equivalent to
	// ground truth per algorithm.
	CorrectGP     int
	CorrectLinear int
	CorrectPoly   int
	// EnumESVs is the number of no-formula streams (Table 6 last column).
	EnumESVs int
}

// Precision computes the per-car and total precision rows: every non-enum,
// non-OBD stream is inferred by GP (already in the run), then the same
// datasets go through linear regression and degree-2 polynomial fitting.
func Precision(runs []*CarRun) []PrecisionRow {
	var rows []PrecisionRow
	for _, run := range runs {
		row := PrecisionRow{Car: run.Profile.Car}
		byKey := map[reverser.StreamKey]reverser.StreamData{}
		for _, sd := range run.Streams {
			byKey[sd.Key] = sd
		}
		for _, esv := range run.Result.ESVs {
			if esv.Key.Proto == "OBD" {
				continue
			}
			if esv.Enum {
				row.EnumESVs++
				continue
			}
			sd := byKey[esv.Key]
			truth, ok := TruthFor(run.Vehicle, esv.Key)
			if !ok || sd.Dataset == nil {
				row.FormulaESVs++
				continue
			}
			row.FormulaESVs++
			if FormulaCorrect(esv.Formula, truth, sd.Dataset.X) {
				row.CorrectGP++
			}
			// Baselines fit the raw pairs — the two-stage filtering and
			// median aggregation are DP-Reverser's own machinery (§3.3),
			// not the LibreCAN-style comparison points (§4.4 attributes
			// their failures to exactly this missing robustness).
			baseline := sd.RawDataset
			if baseline == nil {
				baseline = sd.Dataset
			}
			if lr, err := regress.LinearFit(baseline); err == nil &&
				FormulaCorrect(lr.Tree, truth, sd.Dataset.X) {
				row.CorrectLinear++
			}
			if pf, err := regress.PolyFit(baseline, 2); err == nil &&
				FormulaCorrect(pf.Tree, truth, sd.Dataset.X) {
				row.CorrectPoly++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// PrecisionTotals sums precision rows.
func PrecisionTotals(rows []PrecisionRow) PrecisionRow {
	total := PrecisionRow{Car: "Total"}
	for _, r := range rows {
		total.FormulaESVs += r.FormulaESVs
		total.CorrectGP += r.CorrectGP
		total.CorrectLinear += r.CorrectLinear
		total.CorrectPoly += r.CorrectPoly
		total.EnumESVs += r.EnumESVs
	}
	return total
}

// Table6Markdown renders the GP-precision table (Table 6).
func Table6Markdown(rows []PrecisionRow) string {
	var out [][]string
	for _, r := range append(rows, PrecisionTotals(rows)) {
		out = append(out, []string{
			r.Car, fmt.Sprint(r.FormulaESVs), fmt.Sprint(r.CorrectGP),
			pct(r.CorrectGP, r.FormulaESVs), fmt.Sprint(r.EnumESVs),
		})
	}
	return markdownTable([]string{"Car", "#ESV (formula)", "#Correct ESV", "Precision", "#ESV (Enum)"}, out)
}

// Table10Markdown renders the baseline-precision table (Table 10).
func Table10Markdown(rows []PrecisionRow) string {
	var out [][]string
	for _, r := range append(rows, PrecisionTotals(rows)) {
		out = append(out, []string{
			r.Car, fmt.Sprint(r.FormulaESVs),
			fmt.Sprint(r.CorrectLinear), fmt.Sprint(r.CorrectPoly),
		})
	}
	return markdownTable([]string{"Car", "#ESV (formula)", "#Correct ESV (Linear Reg)", "#Correct ESV (Polynomial)"}, out)
}

// --- Table 7: dashboard validation ---

// Table7Row mirrors one row of Table 7.
type Table7Row struct {
	Car     string
	ESV     string
	Formula string
	Same    bool
}

// Table7 validates recovered formulas against the instrument cluster: the
// dashboard shows the same physical signal the proprietary stream encodes,
// so decoding captured bytes through the inferred formula must reproduce
// the dashboard value. The paper uses cars F, K, L and R.
func Table7(runs []*CarRun) []Table7Row {
	wanted := map[string]string{
		"Car F": "Engine speed",
		"Car K": "Engine speed",
		"Car L": "Coolant temperature",
		"Car R": "Engine speed",
	}
	var rows []Table7Row
	for _, run := range runs {
		esvName, ok := wanted[run.Profile.Car]
		if !ok {
			continue
		}
		row := Table7Row{Car: run.Profile.Car, ESV: esvName}
		byKey := map[reverser.StreamKey]reverser.StreamData{}
		for _, sd := range run.Streams {
			byKey[sd.Key] = sd
		}
		for _, esv := range run.Result.ESVs {
			if esv.Label != esvName || esv.Key.Proto == "OBD" || esv.Formula == nil {
				continue
			}
			row.Formula = esv.FormulaString()
			// The dashboard signal backs the matching OBD PID; compare the
			// formula's decode of observed bytes against the dashboard's
			// own decode (ground truth), which is what pointing a camera
			// at the cluster measures.
			truth, ok := TruthFor(run.Vehicle, esv.Key)
			sd := byKey[esv.Key]
			if ok && sd.Dataset != nil {
				row.Same = FormulaCorrect(esv.Formula, truth, sd.Dataset.X)
			}
			break
		}
		rows = append(rows, row)
	}
	return rows
}

// Table7Markdown renders Table 7.
func Table7Markdown(rows []Table7Row) string {
	var out [][]string
	for _, r := range rows {
		same := "✓"
		if !r.Same {
			same = "✗"
		}
		out = append(out, []string{r.Car, r.ESV, r.Formula, same})
	}
	return markdownTable([]string{"Vehicle", "ESV on dashboard", "Formula (system output)", "Same"}, out)
}

// --- Table 8: inference time ---

// Table8Row mirrors one row of Table 8 (seconds per formula), extended
// with the compiled GP engine's scoring counters so the report shows
// where the evaluation budget actually went.
type Table8Row struct {
	Protocol  string
	GPSeconds float64
	LRSeconds float64
	PFSeconds float64
	// GPEvaluations counts fitness evaluations the run requested;
	// GPCacheHitRate is the fraction served by the engine's
	// cross-generation fitness cache rather than the compiled VM.
	GPEvaluations  int
	GPCacheHitRate float64
}

// Table8 measures the wall-clock cost of inferring one formula with each
// algorithm, on representative UDS (one-variable) and KWP (two-variable)
// datasets.
func Table8(opt Options) []Table8Row {
	cfg := opt.reverserConfig().GP
	mkUDS := func() *gp.Dataset {
		d := &gp.Dataset{}
		for x := 0.0; x <= 255; x += 4 {
			d.X = append(d.X, []float64{x})
			d.Y = append(d.Y, 0.75*x-48)
		}
		return d
	}
	mkKWP := func() *gp.Dataset {
		d := &gp.Dataset{}
		for x0 := 200.0; x0 <= 250; x0 += 10 {
			for x1 := 0.0; x1 <= 255; x1 += 16 {
				d.X = append(d.X, []float64{x0, x1})
				d.Y = append(d.Y, x0*x1/5)
			}
		}
		return d
	}
	measure := func(d *gp.Dataset) Table8Row {
		var row Table8Row
		// GP cost is measured without early stopping so the budget matches
		// the paper's "30 generations × 1000 programs" accounting.
		gpCfg := cfg
		gpCfg.StopFitness = -1
		start := time.Now() //dplint:allow determinism Table 8 *measures* wall time
		gpRes, err := gp.Run(d, gpCfg)
		if err != nil {
			panic(fmt.Sprintf("table 8 gp run: %v", err))
		}
		row.GPSeconds = time.Since(start).Seconds() //dplint:allow determinism measured quantity
		row.GPEvaluations = gpRes.Evaluations
		if gpRes.Evaluations > 0 {
			row.GPCacheHitRate = float64(gpRes.CacheHits) / float64(gpRes.Evaluations)
		}
		start = time.Now() //dplint:allow determinism Table 8 measures wall time
		if _, err := regress.LinearFit(d); err != nil {
			panic(fmt.Sprintf("table 8 linear fit: %v", err))
		}
		row.LRSeconds = time.Since(start).Seconds() //dplint:allow determinism measured quantity
		start = time.Now()                          //dplint:allow determinism Table 8 measures wall time
		if _, err := regress.PolyFit(d, 2); err != nil {
			panic(fmt.Sprintf("table 8 poly fit: %v", err))
		}
		row.PFSeconds = time.Since(start).Seconds() //dplint:allow determinism measured quantity
		return row
	}
	uds := measure(mkUDS())
	uds.Protocol = "UDS"
	kwpRow := measure(mkKWP())
	kwpRow.Protocol = "KWP 2000"
	return []Table8Row{uds, kwpRow}
}

// Table8Markdown renders Table 8.
func Table8Markdown(rows []Table8Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Protocol,
			fmt.Sprintf("%.4f", r.GPSeconds),
			fmt.Sprintf("%.6f", r.LRSeconds),
			fmt.Sprintf("%.6f", r.PFSeconds),
			fmt.Sprintf("%d", r.GPEvaluations),
			fmt.Sprintf("%.1f%%", 100*r.GPCacheHitRate),
		})
	}
	return markdownTable([]string{
		"Protocol", "Genetic Programming (s)", "Linear Regression (s)",
		"Polynomial Curve Fitting (s)", "GP evaluations", "GP cache hits",
	}, out)
}

// --- Table 9: frame-type mix ---

// Table9Row mirrors one row of Table 9.
type Table9Row struct {
	Protocol string
	Single   int
	Multi    int
	Control  int
	Total    int
}

// Table9 measures the frame mix of UDS traffic (Car A) and KWP traffic
// (Cars B and C), reproducing the paper's single/multi split. For VW TP
// 2.0, "single" is the paper's last-frame count and "multi" the
// must-wait-for-more count.
func Table9(runs []*CarRun) []Table9Row {
	var uds, kwpRow Table9Row
	uds.Protocol = "UDS"
	kwpRow.Protocol = "KWP 2000"
	for _, run := range runs {
		switch run.Profile.Car {
		case "Car A":
			s := run.Result.Stats
			uds.Single += s.ISOTPSingle
			uds.Multi += s.ISOTPMulti()
			uds.Control += s.ISOTPFlowControl
			uds.Total += s.ISOTPSingle + s.ISOTPMulti() + s.ISOTPFlowControl
		case "Car B", "Car C":
			s := run.Result.Stats
			kwpRow.Single += s.VWTPLast
			kwpRow.Multi += s.VWTPWaiting
			kwpRow.Control += s.VWTPControl
			kwpRow.Total += s.VWTPLast + s.VWTPWaiting
		}
	}
	return []Table9Row{uds, kwpRow}
}

// Table9Markdown renders Table 9.
func Table9Markdown(rows []Table9Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Protocol,
			fmt.Sprintf("%d (%s)", r.Single, pct(r.Single, r.Total)),
			fmt.Sprintf("%d (%s)", r.Multi, pct(r.Multi, r.Total)),
			fmt.Sprint(r.Total),
		})
	}
	return markdownTable([]string{"Protocol", "# Single/Last Frames", "# Multi Frames", "# Total"}, out)
}
