package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dpreverser/internal/faults"
	"dpreverser/internal/reverser"
	"dpreverser/internal/vehicle"
)

// TestAdversarialSoak is the attack-resilience acceptance check: Car M is
// reversed under each adversarial class saturated (probability 1.0). Every
// run must complete best-effort (no hard failure), attribute every
// injector-attacked CAN ID on Result.Degraded with the right attack
// class, still recover at least 80% of the clean run's formulas on the
// streams the injector did not touch — and stay byte-deterministic
// between Parallelism 1 and 8.
func TestAdversarialSoak(t *testing.T) {
	p, ok := vehicle.ProfileByCar("Car M")
	if !ok {
		t.Fatal("Car M missing from the fleet")
	}
	base := Options{Quick: true, Seed: 1, Parallelism: 1}

	clean, err := RunCar(p, base)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Vehicle.Close()
	cleanFormulas := map[reverser.StreamKey]bool{}
	for _, e := range clean.Result.ESVs {
		if e.Formula != nil {
			cleanFormulas[e.Key] = true
		}
	}
	if len(cleanFormulas) == 0 {
		t.Fatal("clean run recovered no formulas; soak has nothing to compare")
	}

	cases := []struct {
		name  string
		class string
	}{
		{"fc-starve", faults.ClassFCStarvation},
		{"ff-flood", faults.ClassFirstFrameFlood},
		{"interleave", faults.ClassInterleave},
		{"session-replay", faults.ClassSessionStarvation},
		{"slow-drip", faults.ClassSlowDrip},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := base
			opt.Faults = tc.name + "=1"
			opt.FaultSeed = 1
			fr, err := RunCar(p, opt)
			if err != nil {
				t.Fatalf("best-effort adversarial run failed outright: %v", err)
			}
			defer fr.Vehicle.Close()
			if len(fr.AttackedIDs) == 0 {
				t.Fatal("injector attacked no IDs at probability 1.0")
			}

			// Attribution: every attacked ID shows up in the degradation
			// report at the attack stage under its class label.
			for id := range fr.AttackedIDs {
				covered := false
				for _, se := range fr.Result.Degraded {
					if se.Stage != reverser.StageAttack || se.Reason != tc.class {
						continue
					}
					if se.Key.RespID == id || strings.Contains(se.Detail, fmt.Sprintf("%03X", id)) {
						covered = true
						break
					}
				}
				if !covered {
					t.Errorf("attacked ID %03X not attributed as %s", id, tc.class)
				}
			}

			// Containment: streams the injector did not touch still yield
			// at least 80% of the clean run's formulas.
			unattacked, recovered := 0, 0
			for key := range cleanFormulas {
				if _, hit := fr.AttackedIDs[key.RespID]; hit {
					continue
				}
				unattacked++
			}
			if unattacked == 0 {
				t.Fatal("attack covered every clean stream; containment unmeasurable")
			}
			for _, e := range fr.Result.ESVs {
				if e.Formula == nil || !cleanFormulas[e.Key] {
					continue
				}
				if _, hit := fr.AttackedIDs[e.Key.RespID]; hit {
					continue
				}
				recovered++
			}
			if 5*recovered < 4*unattacked {
				t.Fatalf("recovered %d of %d unattacked formulas (< 80%%)", recovered, unattacked)
			}

			// Determinism: injection and containment are byte-identical at
			// any parallelism.
			wide := opt
			wide.Parallelism = 8
			r8, err := RunCar(p, wide)
			if err != nil {
				t.Fatal(err)
			}
			defer r8.Vehicle.Close()
			j1, err := json.Marshal(fr.Result)
			if err != nil {
				t.Fatal(err)
			}
			j8, err := json.Marshal(r8.Result)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1, j8) {
				t.Fatal("adversarial result differs between Parallelism 1 and 8")
			}
			if r8.Faults != fr.Faults || !reflect.DeepEqual(r8.AttackedIDs, fr.AttackedIDs) {
				t.Fatal("adversarial injection not deterministic across parallelism")
			}
		})
	}
}
