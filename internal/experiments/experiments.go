// Package experiments regenerates every measured artifact of the paper's
// evaluation — Tables 4 through 13 plus the §3.1 planner claim — on the
// simulated fleet. Each table has a typed runner returning structured rows
// and a markdown renderer; cmd/experiments assembles them into
// EXPERIMENTS.md and bench_test.go wraps them as benchmarks.
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpreverser/internal/diagtool"
	"dpreverser/internal/faults"
	"dpreverser/internal/gp"
	"dpreverser/internal/kwp"
	"dpreverser/internal/obd"
	"dpreverser/internal/reverser"
	"dpreverser/internal/rig"
	"dpreverser/internal/sim"
	"dpreverser/internal/telemetry"
	"dpreverser/internal/vehicle"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks recording durations and the GP budget so the whole
	// suite runs in seconds (tests/CI); the default reproduces the paper's
	// settings (30-second reads, 1000×30 GP).
	Quick bool
	// Seed perturbs the OCR error streams and GP seeds.
	Seed int64
	// Parallelism caps concurrent car pipelines in RunFleet and the
	// per-stream inference workers inside each pipeline. Values < 1 mean
	// runtime.GOMAXPROCS(0). Results are identical at every setting: each
	// car runs on its own virtual clock and every stream derives its own
	// GP seed.
	Parallelism int
	// Progress, when non-nil, receives fleet-level status lines (car
	// started/finished with wall times). It may be called from several
	// goroutines; RunFleet serialises the calls.
	Progress func(format string, args ...any)
	// Telemetry, when non-nil, instruments every pipeline run: per-car
	// spans from RunFleet, plus the reverser's stage/stream spans and
	// pipeline metrics. Counters aggregate across the whole fleet.
	Telemetry *telemetry.Provider
	// Faults, when non-empty, perturbs every capture before analysis:
	// a preset name or key=value spec (see faults.ParseSpec). The
	// pipeline then runs best-effort and reports damage on
	// Result.Degraded — the soak experiment's input.
	Faults string
	// FaultSeed seeds the per-car fault injectors. Each car derives its
	// own injector so fleet results stay order-independent.
	FaultSeed int64
}

// workers resolves the effective parallelism.
func (o Options) workers() int {
	if o.Parallelism < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// rigConfig builds the collection parameters for an options set.
func (o Options) rigConfig() rig.Config {
	cfg := rig.DefaultConfig()
	cfg.Seed = o.Seed + 1
	if o.Quick {
		cfg.ReadDuration = 10 * time.Second
		cfg.AlignDuration = 5 * time.Second
		cfg.TestDuration = time.Second
	}
	return cfg
}

// reverserConfig builds the pipeline parameters for an options set.
func (o Options) reverserConfig() reverser.Config {
	cfg := reverser.DefaultConfig()
	cfg.GP.Seed = o.Seed + 2
	if o.Quick {
		cfg.GP.PopulationSize = 300
		cfg.GP.Generations = 20
	}
	return cfg
}

// CarRun is one car's full collection + reverse-engineering pass, plus the
// ground-truth oracle the scorers use.
type CarRun struct {
	Profile vehicle.Profile
	Capture rig.Capture
	Streams []reverser.StreamData
	Result  *reverser.Result
	// Faults summarises the damage injected into this car's capture
	// (zero-valued when Options.Faults was empty).
	Faults faults.Stats
	// AttackedIDs is the injector's ground truth for adversarial specs:
	// each CAN ID it attacked, mapped to the attack classes used. Nil when
	// no adversarial fault fired. Kept off faults.Stats so that struct
	// stays ==-comparable.
	AttackedIDs map[uint32][]string
	// Vehicle is retained as the ground-truth oracle (and for the replay
	// experiment); it is never an input to the pipeline.
	Vehicle *vehicle.Vehicle
	// CameraFrames/CameraCorrupted are camera b's OCR statistics.
	CameraFrames, CameraCorrupted int
}

// RunCar collects and reverse engineers one car.
func RunCar(p vehicle.Profile, opt Options) (*CarRun, error) {
	return RunCarContext(context.Background(), p, opt)
}

// RunCarContext is RunCar with cancellation: ctx aborts the car's
// inference between GP generations.
func RunCarContext(ctx context.Context, p vehicle.Profile, opt Options) (*CarRun, error) {
	clock := sim.NewClock(0)
	tool, veh, err := diagtool.ForProfile(p, clock)
	if err != nil {
		return nil, fmt.Errorf("run %s: %w", p.Car, err)
	}
	defer tool.Close()
	r := rig.New(tool, veh, opt.rigConfig())
	defer r.Close()
	cap, err := r.RunFull()
	if err != nil {
		return nil, fmt.Errorf("run %s: %w", p.Car, err)
	}
	var faultStats faults.Stats
	var attacked map[uint32][]string
	if opt.Faults != "" {
		spec, err := faults.ParseSpec(opt.Faults)
		if err != nil {
			return nil, fmt.Errorf("run %s: %w", p.Car, err)
		}
		if spec.Enabled() {
			// Each car gets its own injector seeded from the shared
			// fault seed, so fleet parallelism cannot reorder draws.
			inj := faults.New(spec, opt.FaultSeed)
			cap.Frames = inj.Frames(cap.Frames)
			cap.UIFrames = inj.UIFrames(cap.UIFrames)
			faultStats = inj.Stats()
			attacked = inj.AttackedIDs()
			inj.Publish(opt.Telemetry.RegistryOrNil())
		}
	}
	rv := reverser.New(
		reverser.WithConfig(opt.reverserConfig()),
		reverser.WithParallelism(opt.workers()),
		reverser.WithTelemetry(opt.Telemetry),
	)
	res, err := rv.Reverse(ctx, cap)
	if err != nil {
		return nil, fmt.Errorf("reverse %s: %w", p.Car, err)
	}
	frames, corrupted := r.CameraB().Stats()
	return &CarRun{
		Profile: p, Capture: cap, Streams: res.Streams, Result: res, Vehicle: veh,
		Faults: faultStats, AttackedIDs: attacked,
		CameraFrames: frames, CameraCorrupted: corrupted,
	}, nil
}

// RunFleet runs every car of the fleet, fanning the per-car pipelines out
// across Options.Parallelism workers. The returned slice is in fleet
// order regardless of completion order, and — because every car owns its
// virtual clock, tool and seeds — identical to a sequential run.
func RunFleet(opt Options) ([]*CarRun, error) {
	return RunFleetContext(context.Background(), opt)
}

// RunFleetContext is RunFleet with cancellation. On error or cancellation
// the already-completed cars are closed before returning.
func RunFleetContext(ctx context.Context, opt Options) ([]*CarRun, error) {
	fleet := vehicle.Fleet()
	runs := make([]*CarRun, len(fleet))
	workers := opt.workers()
	if workers > len(fleet) {
		workers = len(fleet)
	}
	var (
		cursor   int64 = -1
		finished int64
		wg       sync.WaitGroup
		progMu   sync.Mutex // serialises opt.Progress only — never guards state
		errMu    sync.Mutex
		firstErr error
	)
	progress := func(format string, args ...any) {
		if opt.Progress == nil {
			return
		}
		progMu.Lock()
		// progMu's one job is keeping concurrent workers' progress lines
		// from interleaving; it protects no data, so a slow or re-entrant
		// Progress callback can delay other progress lines but nothing else.
		opt.Progress(format, args...) //dplint:allow lockhold progMu exists solely to serialise this callback and guards no state
		progMu.Unlock()
	}
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&cursor, 1))
				if i >= len(fleet) || ctx.Err() != nil {
					return
				}
				errMu.Lock()
				broken := firstErr != nil
				errMu.Unlock()
				if broken {
					return
				}
				p := fleet[i]
				start := time.Now() //dplint:allow determinism progress reporting only
				sp := opt.Telemetry.TracerOrNil().Start("car",
					telemetry.String("car", p.Car), telemetry.String("model", p.Model))
				run, err := RunCarContext(ctx, p, opt)
				sp.End()
				if err != nil {
					fail(err)
					return
				}
				runs[i] = run
				progress("%s done in %v (%d/%d)", p.Car,
					time.Since(start).Round(time.Millisecond), //dplint:allow determinism progress reporting
					atomic.AddInt64(&finished, 1), len(fleet))
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		firstErr = err
	}
	if firstErr != nil {
		CloseRuns(runs)
		return nil, firstErr
	}
	return runs, nil
}

// CloseRuns releases the vehicles held by a fleet run. Nil entries (cars
// a cancelled or failed RunFleetContext never reached) are skipped.
func CloseRuns(runs []*CarRun) {
	for _, r := range runs {
		if r != nil && r.Vehicle != nil {
			r.Vehicle.Close()
		}
	}
}

// Truth is the resolved ground truth for one stream: the proprietary
// decode over the pipeline's variable convention.
type Truth struct {
	Decode func(vars []float64) float64
	Expr   string
	Enum   bool
}

// TruthFor resolves a stream key against the vehicle's proprietary tables.
func TruthFor(veh *vehicle.Vehicle, key reverser.StreamKey) (Truth, bool) {
	switch key.Proto {
	case "UDS":
		for _, b := range veh.Bindings() {
			if b.RespID != key.RespID {
				continue
			}
			spec, ok := b.ECU.DIDSpecFor(key.DID)
			if !ok {
				continue
			}
			codec := spec.Codec
			return Truth{
				Decode: func(vars []float64) float64 {
					if len(vars) != 1 {
						return math.NaN()
					}
					return codec.Decode(uint64(math.Round(vars[0])))
				},
				Expr: codec.Expr,
				Enum: spec.Enum,
			}, true
		}
	case "KWP":
		for _, b := range veh.Bindings() {
			if key.RespID != 0x300+uint32(b.Addr) {
				continue
			}
			ls, ok := b.ECU.LocalSpecFor(key.LocalID)
			if !ok || key.Index >= len(ls.ESVs) {
				continue
			}
			es := ls.ESVs[key.Index]
			ft, ok := kwp.LookupFormula(es.FType)
			if !ok {
				return Truth{}, false
			}
			return Truth{
				Decode: func(vars []float64) float64 {
					if len(vars) != 2 {
						return math.NaN()
					}
					return ft.Eval(vars[0], vars[1])
				},
				Expr: ft.Expr,
				Enum: es.Enum,
			}, true
		}
	case "OBD":
		spec, ok := obd.Lookup(byte(key.DID))
		if !ok {
			return Truth{}, false
		}
		return Truth{
			Decode: func(vars []float64) float64 {
				data := make([]byte, len(vars))
				for i, v := range vars {
					data[i] = byte(math.Round(v))
				}
				if len(data) != spec.Width {
					return math.NaN()
				}
				return spec.Decode(data)
			},
			Expr: spec.Formula,
		}, true
	}
	return Truth{}, false
}

// FormulaCorrect scores an inferred formula against ground truth over the
// stream's observed (aggregated) domain — the paper's acceptance criterion:
// outputs "almost the same" over the values seen in traffic.
func FormulaCorrect(f *gp.Node, truth Truth, domain [][]float64) bool {
	if f == nil || len(domain) == 0 {
		return false
	}
	for _, row := range domain {
		want := truth.Decode(row)
		if math.IsNaN(want) {
			return false
		}
		got := f.Eval(row)
		if math.Abs(got-want) > 1.0+0.03*math.Abs(want) {
			return false
		}
	}
	return true
}

// markdownTable renders a pipe table.
func markdownTable(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(headers, " | ") + " |\n")
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, r := range rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

func pct(num, den int) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
