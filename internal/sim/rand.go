package sim

import "math/rand"

// NewRand returns a deterministic random source for the given seed. Every
// stochastic component in the simulation (signal noise, OCR errors, GP
// evolution) takes an explicit *rand.Rand so experiment runs are exactly
// reproducible; this constructor centralises the convention.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitRand derives an independent deterministic stream from a parent
// stream. Components that fork work (for example one RNG per simulated
// vehicle) use SplitRand so adding a consumer does not perturb the draws
// seen by its siblings.
func SplitRand(parent *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(parent.Int63()))
}
