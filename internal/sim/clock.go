// Package sim provides the deterministic simulation substrate shared by
// every simulated component in this repository: a virtual clock and seeded
// random-number plumbing.
//
// DP-Reverser's physical testbed (vehicles, cameras, a robotic clicker) is
// replaced here by simulators that all advance on the same virtual timeline,
// so experiments are exactly reproducible and tests run in microseconds of
// wall time regardless of how many simulated seconds they cover.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock. All simulated components (the CAN bus, ECUs,
// diagnostic tools, cameras, the robotic clicker) read the current instant
// from a shared Clock instead of time.Now, and the experiment driver
// advances it explicitly.
//
// The zero value is a clock at the zero instant, ready to use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration

	// timers ordered by deadline; a simple slice is sufficient because the
	// simulations schedule at most a few dozen timers at a time.
	timers []*timer
}

type timer struct {
	deadline time.Duration
	fn       func(now time.Duration)
	fired    bool
}

// NewClock returns a clock positioned at start.
func NewClock(start time.Duration) *Clock {
	return &Clock{now: start}
}

// Now reports the current virtual instant as an offset from the simulation
// epoch.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d, firing any timers whose deadlines
// fall inside the window in deadline order. Advancing by a negative duration
// panics: the simulation timeline is monotonic by construction.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %v", d))
	}
	c.mu.Lock()
	target := c.now + d
	c.mu.Unlock()
	c.AdvanceTo(target)
}

// AdvanceTo moves the clock forward to the absolute instant t. It is a
// no-op if t is not after the current instant.
func (c *Clock) AdvanceTo(t time.Duration) {
	for {
		c.mu.Lock()
		if t <= c.now {
			c.mu.Unlock()
			return
		}
		// Find the earliest unfired timer within (now, t].
		var next *timer
		for _, tm := range c.timers {
			if tm.fired || tm.deadline > t {
				continue
			}
			if next == nil || tm.deadline < next.deadline {
				next = tm
			}
		}
		if next == nil {
			c.now = t
			c.mu.Unlock()
			return
		}
		next.fired = true
		c.now = next.deadline
		fn, now := next.fn, c.now
		c.compactLocked()
		c.mu.Unlock()
		fn(now)
	}
}

// After schedules fn to run when the clock reaches now+d. The callback runs
// synchronously inside the Advance call that crosses the deadline, with the
// clock positioned exactly at the deadline.
func (c *Clock) After(d time.Duration, fn func(now time.Duration)) {
	if fn == nil {
		panic("sim: After with nil callback")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	deadline := c.now + d
	if d < 0 {
		deadline = c.now
	}
	c.timers = append(c.timers, &timer{deadline: deadline, fn: fn})
}

// PendingTimers reports how many scheduled callbacks have not fired yet.
func (c *Clock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, tm := range c.timers {
		if !tm.fired {
			n++
		}
	}
	return n
}

// compactLocked drops fired timers so the slice does not grow without bound.
// Callers must hold c.mu.
func (c *Clock) compactLocked() {
	if len(c.timers) < 64 {
		return
	}
	live := c.timers[:0]
	for _, tm := range c.timers {
		if !tm.fired {
			live = append(live, tm)
		}
	}
	c.timers = live
}
