package sim

import (
	"testing"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
	c.Advance(5 * time.Millisecond)
	if got := c.Now(); got != 5*time.Millisecond {
		t.Fatalf("after Advance Now() = %v, want 5ms", got)
	}
}

func TestClockNewClockStart(t *testing.T) {
	c := NewClock(3 * time.Second)
	if got := c.Now(); got != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-time.Second)
}

func TestClockAdvanceToPast(t *testing.T) {
	c := NewClock(10 * time.Second)
	c.AdvanceTo(5 * time.Second)
	if got := c.Now(); got != 10*time.Second {
		t.Fatalf("AdvanceTo past moved clock to %v", got)
	}
}

func TestClockTimerFiresAtDeadline(t *testing.T) {
	var c Clock
	var firedAt time.Duration = -1
	c.After(100*time.Millisecond, func(now time.Duration) { firedAt = now })

	c.Advance(99 * time.Millisecond)
	if firedAt != -1 {
		t.Fatalf("timer fired early at %v", firedAt)
	}
	c.Advance(time.Millisecond)
	if firedAt != 100*time.Millisecond {
		t.Fatalf("timer fired at %v, want 100ms", firedAt)
	}
}

func TestClockTimersFireInDeadlineOrder(t *testing.T) {
	var c Clock
	var order []int
	c.After(30*time.Millisecond, func(time.Duration) { order = append(order, 3) })
	c.After(10*time.Millisecond, func(time.Duration) { order = append(order, 1) })
	c.After(20*time.Millisecond, func(time.Duration) { order = append(order, 2) })

	c.Advance(time.Second)
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %d timers, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order %v, want %v", order, want)
		}
	}
}

func TestClockTimerSeesExactDeadline(t *testing.T) {
	var c Clock
	c.After(7*time.Millisecond, func(now time.Duration) {
		if now != 7*time.Millisecond {
			t.Errorf("callback now = %v, want 7ms", now)
		}
	})
	c.Advance(time.Hour)
}

func TestClockTimerCanScheduleTimer(t *testing.T) {
	var c Clock
	var second time.Duration = -1
	c.After(10*time.Millisecond, func(time.Duration) {
		c.After(10*time.Millisecond, func(now time.Duration) { second = now })
	})
	c.Advance(time.Second)
	if second != 20*time.Millisecond {
		t.Fatalf("chained timer fired at %v, want 20ms", second)
	}
}

func TestClockNegativeAfterFiresImmediatelyOnNextAdvance(t *testing.T) {
	c := NewClock(time.Second)
	var firedAt time.Duration = -1
	c.After(-time.Minute, func(now time.Duration) { firedAt = now })
	c.Advance(time.Nanosecond)
	if firedAt != time.Second {
		t.Fatalf("fired at %v, want 1s (clamped to schedule instant)", firedAt)
	}
}

func TestClockPendingTimers(t *testing.T) {
	var c Clock
	for i := 0; i < 5; i++ {
		c.After(time.Duration(i+1)*time.Millisecond, func(time.Duration) {})
	}
	if got := c.PendingTimers(); got != 5 {
		t.Fatalf("PendingTimers = %d, want 5", got)
	}
	c.Advance(3 * time.Millisecond)
	if got := c.PendingTimers(); got != 2 {
		t.Fatalf("PendingTimers after advance = %d, want 2", got)
	}
}

func TestClockManyTimersCompaction(t *testing.T) {
	var c Clock
	fired := 0
	for i := 0; i < 500; i++ {
		c.After(time.Duration(i)*time.Microsecond, func(time.Duration) { fired++ })
	}
	c.Advance(time.Second)
	if fired != 500 {
		t.Fatalf("fired %d timers, want 500", fired)
	}
	if got := c.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers = %d, want 0", got)
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitRandIndependence(t *testing.T) {
	parent := NewRand(1)
	c1 := SplitRand(parent)
	c2 := SplitRand(parent)
	same := true
	for i := 0; i < 32; i++ {
		if c1.Int63() != c2.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("split streams are identical; expected independent streams")
	}
}
