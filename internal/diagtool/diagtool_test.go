package diagtool

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/sim"
	"dpreverser/internal/ui"
	"dpreverser/internal/vehicle"
)

func newTool(t *testing.T, car string) (*Tool, *vehicle.Vehicle, *sim.Clock) {
	t.Helper()
	p, ok := vehicle.ProfileByCar(car)
	if !ok {
		t.Fatalf("unknown car %q", car)
	}
	clock := sim.NewClock(0)
	tool, veh, err := ForProfile(p, clock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tool.Close(); veh.Close() })
	return tool, veh, clock
}

// navigate drives the tool to the live-data screen of ECU 0 with every
// stream item selected.
func navigateToLiveData(t *testing.T, tool *Tool) {
	t.Helper()
	for _, id := range []string{"home.diag", "ecu.0", "func.stream"} {
		if !tool.ClickWidget(id) {
			t.Fatalf("click %q failed on screen %q", id, tool.ScreenName())
		}
	}
	tool.SelectAllOnECU()
	if !tool.ClickWidget("sel.ok") {
		t.Fatal("OK click failed")
	}
	if tool.ScreenName() != "live-data" {
		t.Fatalf("screen = %q", tool.ScreenName())
	}
}

func TestToolQualityByName(t *testing.T) {
	_, vehA, _ := newTool(t, "Car A") // LAUNCH X431
	toolA, err := New("LAUNCH X431", vehA)
	if err != nil {
		t.Fatal(err)
	}
	defer toolA.Close()
	if toolA.Quality != QualityLow {
		t.Fatal("X431 should be low quality")
	}
	toolB, err := New("AUTEL 919", vehA)
	if err != nil {
		t.Fatal(err)
	}
	defer toolB.Close()
	if toolB.Quality != QualityHigh {
		t.Fatal("AUTEL should be high quality")
	}
}

func TestToolMenuNavigation(t *testing.T) {
	tool, _, _ := newTool(t, "Car A")
	if tool.ScreenName() != "home" {
		t.Fatalf("initial screen = %q", tool.ScreenName())
	}
	tool.ClickWidget("home.diag")
	if tool.ScreenName() != "ecu-list" {
		t.Fatalf("screen = %q", tool.ScreenName())
	}
	tool.ClickWidget("ecu.0")
	if tool.ScreenName() != "func-menu" {
		t.Fatalf("screen = %q", tool.ScreenName())
	}
	tool.ClickWidget("nav.back")
	if tool.ScreenName() != "ecu-list" {
		t.Fatalf("back: screen = %q", tool.ScreenName())
	}
}

func TestClickByCoordinates(t *testing.T) {
	tool, _, _ := newTool(t, "Car A")
	s := tool.Screen()
	w, ok := s.FindByText("Diagnostics")
	if !ok {
		t.Fatal("Diagnostics button missing")
	}
	x, y := w.Center()
	if !tool.Click(x, y) {
		t.Fatal("coordinate click missed")
	}
	if tool.ScreenName() != "ecu-list" {
		t.Fatalf("screen = %q", tool.ScreenName())
	}
	// Clicking empty space does nothing.
	if tool.Click(5, 5) {
		t.Fatal("click on empty space reacted")
	}
}

func TestStreamSelectPaging(t *testing.T) {
	tool, _, _ := newTool(t, "Car R") // 40 formula ESVs: multiple pages
	tool.ClickWidget("home.diag")
	tool.ClickWidget("ecu.0")
	tool.ClickWidget("func.stream")
	first := tool.Screen()
	count := 0
	for _, w := range first.Widgets {
		if strings.HasPrefix(w.ID, "sel.item.") {
			count++
		}
	}
	if count == 0 || count > PageSize {
		t.Fatalf("page shows %d items", count)
	}
	tool.ClickWidget("sel.next")
	second := tool.Screen()
	if first.Widgets[1].ID == second.Widgets[1].ID && count == PageSize {
		t.Fatal("next page did not change items")
	}
	tool.ClickWidget("sel.prev")
	tool.ClickWidget("sel.prev") // clamp at first page
}

func TestStreamItemToggle(t *testing.T) {
	tool, _, _ := newTool(t, "Car A")
	tool.ClickWidget("home.diag")
	tool.ClickWidget("ecu.0")
	tool.ClickWidget("func.stream")
	s := tool.Screen()
	var itemID string
	for _, w := range s.Widgets {
		if strings.HasPrefix(w.ID, "sel.item.") {
			itemID = w.ID
			break
		}
	}
	if itemID == "" {
		t.Fatal("no stream items")
	}
	tool.ClickWidget(itemID)
	s = tool.Screen()
	w, _ := s.FindByID(itemID)
	if !strings.HasPrefix(w.Text, "[x] ") {
		t.Fatalf("item not marked selected: %q", w.Text)
	}
	tool.ClickWidget(itemID)
	s = tool.Screen()
	w, _ = s.FindByID(itemID)
	if !strings.HasPrefix(w.Text, "[ ] ") {
		t.Fatalf("item not unmarked: %q", w.Text)
	}
}

func TestLiveDataPollUDS(t *testing.T) {
	tool, veh, clock := newTool(t, "Car A")
	snif := can.NewSniffer(veh.Bus, nil)
	navigateToLiveData(t, tool)
	tool.Poll()
	clock.Advance(500 * time.Millisecond)
	tool.Poll()

	s := tool.Screen()
	values := 0
	for _, w := range s.Widgets {
		if w.Kind == ui.Value && w.Text != "" {
			values++
			if _, err := strconv.ParseFloat(w.Text, 64); err != nil {
				t.Fatalf("value widget %q is not numeric", w.Text)
			}
		}
	}
	if values == 0 {
		t.Fatal("no live values displayed")
	}
	if snif.Len() == 0 {
		t.Fatal("polling generated no CAN traffic")
	}
	if tool.PollErrors() != 0 {
		t.Fatalf("poll errors = %d", tool.PollErrors())
	}
}

func TestLiveDataPollKWP(t *testing.T) {
	tool, veh, clock := newTool(t, "Car B")
	snif := can.NewSniffer(veh.Bus, nil)
	navigateToLiveData(t, tool)
	tool.Poll()
	clock.Advance(time.Second)
	tool.Poll()
	s := tool.Screen()
	values := 0
	for _, w := range s.Widgets {
		if w.Kind == ui.Value && w.Text != "" {
			values++
		}
	}
	if values == 0 {
		t.Fatal("no KWP live values displayed")
	}
	if snif.Len() == 0 {
		t.Fatal("no VW TP 2.0 traffic captured")
	}
	if tool.PollErrors() != 0 {
		t.Fatalf("poll errors = %d", tool.PollErrors())
	}
}

func TestLiveValuesTrackSignals(t *testing.T) {
	tool, _, clock := newTool(t, "Car A")
	navigateToLiveData(t, tool)
	tool.Poll()
	first := valueTexts(tool)
	for i := 0; i < 40; i++ {
		clock.Advance(500 * time.Millisecond)
		tool.Poll()
	}
	second := valueTexts(tool)
	changed := 0
	for i := range first {
		if first[i] != second[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("live values frozen over 20 simulated seconds")
	}
}

func valueTexts(tool *Tool) []string {
	var out []string
	for _, w := range tool.Screen().Widgets {
		if w.Kind == ui.Value {
			out = append(out, w.Text)
		}
	}
	return out
}

func TestOBDLiveScreen(t *testing.T) {
	tool, _, _ := newTool(t, "Car L")
	tool.ClickWidget("home.diag")
	tool.ClickWidget("ecu.0")
	tool.ClickWidget("func.obd")
	if tool.ScreenName() != "obd-live" {
		t.Fatalf("screen = %q", tool.ScreenName())
	}
	tool.Poll()
	s := tool.Screen()
	values := 0
	for _, w := range s.Widgets {
		if w.Kind == ui.Value && w.Text != "" {
			values++
		}
	}
	if values != 7 {
		t.Fatalf("OBD values = %d, want 7", values)
	}
}

func TestActiveTestLifecycle(t *testing.T) {
	tool, veh, _ := newTool(t, "Car A") // ECRs via UDS 0x2F
	tool.ClickWidget("home.diag")

	// Find an ECU with actuators.
	ecuIdx := -1
	var actName string
	for i, b := range veh.Bindings() {
		if acts := b.ECU.Actuators(); len(acts) > 0 {
			ecuIdx = i
			actName = acts[0].Name
			break
		}
	}
	if ecuIdx < 0 {
		t.Fatal("no actuators on Car A")
	}
	tool.ClickWidget("ecu." + strconv.Itoa(ecuIdx))
	tool.ClickWidget("func.active")
	if tool.ScreenName() != "active-list" {
		t.Fatalf("screen = %q", tool.ScreenName())
	}
	s := tool.Screen()
	var itemID string
	for _, w := range s.Widgets {
		if strings.HasPrefix(w.ID, "act.item.") && w.Text == actName {
			itemID = w.ID
			break
		}
	}
	if itemID == "" {
		t.Fatalf("actuator %q not listed", actName)
	}
	tool.ClickWidget(itemID)
	if !tool.TestRunning() {
		t.Fatal("active test did not start")
	}
	if !veh.Bindings()[ecuIdx].ECU.ActuatorActive(actName) {
		t.Fatal("actuator not physically active")
	}
	tool.ClickWidget("act.stop")
	if tool.TestRunning() {
		t.Fatal("test still running after stop")
	}
	if veh.Bindings()[ecuIdx].ECU.ActuatorActive(actName) {
		t.Fatal("actuator still active after stop")
	}
}

func TestActiveTestService30(t *testing.T) {
	tool, veh, _ := newTool(t, "Car Q") // Nissan: 0x30 ECR service
	tool.ClickWidget("home.diag")
	ecuIdx := -1
	for i, b := range veh.Bindings() {
		if len(b.ECU.Actuators()) > 0 {
			ecuIdx = i
			break
		}
	}
	if ecuIdx < 0 {
		t.Fatal("no actuators")
	}
	act := veh.Bindings()[ecuIdx].ECU.Actuators()[0]
	tool.ClickWidget("ecu." + strconv.Itoa(ecuIdx))
	tool.ClickWidget("func.active")
	s := tool.Screen()
	for _, w := range s.Widgets {
		if strings.HasPrefix(w.ID, "act.item.") && w.Text == act.Name {
			tool.ClickWidget(w.ID)
			break
		}
	}
	if !veh.Bindings()[ecuIdx].ECU.ActuatorActive(act.Name) {
		t.Fatal("0x30-service actuator not active")
	}
	// Back navigation stops the test too.
	tool.ClickWidget("nav.back")
	if veh.Bindings()[ecuIdx].ECU.ActuatorActive(act.Name) {
		t.Fatal("actuator still active after leaving screen")
	}
}

func TestScreenGeometryByQuality(t *testing.T) {
	toolHigh, _, _ := newTool(t, "Car L") // AUTEL
	sHigh := toolHigh.Screen()
	if sHigh.Width != 1024 || sHigh.Height != 768 {
		t.Fatalf("high-quality screen %dx%d", sHigh.Width, sHigh.Height)
	}
	toolLow, _, _ := newTool(t, "Car A") // LAUNCH X431
	sLow := toolLow.Screen()
	if sLow.Width != 480 || sLow.Height != 320 {
		t.Fatalf("low-quality screen %dx%d", sLow.Width, sLow.Height)
	}
}

func TestBackButtonIsIconOnly(t *testing.T) {
	tool, _, _ := newTool(t, "Car A")
	tool.ClickWidget("home.diag")
	s := tool.Screen()
	w, ok := s.FindByID("nav.back")
	if !ok {
		t.Fatal("no back button")
	}
	if w.Kind != ui.IconButton || w.Text != "" || w.Icon == "" {
		t.Fatalf("back button = %+v, want icon-only", w)
	}
}

func TestDatabaseCoversInventory(t *testing.T) {
	for _, car := range []string{"Car A", "Car B", "Car K", "Car G"} {
		tool, _, _ := newTool(t, car)
		p, _ := vehicle.ProfileByCar(car)
		if got := len(tool.Streams()); got != p.NumFormulaESVs+p.NumEnumESVs {
			t.Errorf("%s: tool DB has %d streams, want %d", car, got, p.NumFormulaESVs+p.NumEnumESVs)
		}
		if got := len(tool.Actuators()); got != p.NumECRs {
			t.Errorf("%s: tool DB has %d actuators, want %d", car, got, p.NumECRs)
		}
	}
}
