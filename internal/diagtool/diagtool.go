// Package diagtool simulates professional vehicle diagnostic tools — the
// AUTEL 919 / LAUNCH X431 handhelds and the VCDS / Techstream laptop
// software of the paper's Table 3. A tool is the oracle DP-Reverser mines:
// it embeds the manufacturer-proprietary knowledge (which identifiers
// exist, what they mean, and the formulas that decode them) and exposes it
// only through two side channels the paper exploits — the diagnostic
// traffic it generates on the CAN bus and the text it draws on its screen.
//
// The simulation keeps that boundary strict: the reverse-engineering
// pipeline never calls into this package's database; it only sees sniffed
// frames and OCR'd screen text.
package diagtool

import (
	"fmt"

	"dpreverser/internal/ecu"
	"dpreverser/internal/kwp"
	"dpreverser/internal/sim"
	"dpreverser/internal/uds"
	"dpreverser/internal/ui"
	"dpreverser/internal/vehicle"
)

// Quality captures the screen class, which drives OCR accuracy (Table 4).
type Quality int

// Screen-quality classes.
const (
	// QualityHigh is a large high-resolution screen (AUTEL 919, laptop
	// software).
	QualityHigh Quality = iota
	// QualityLow is a small low-resolution handheld screen (LAUNCH X431).
	QualityLow
)

// StreamItem is one readable quantity in the tool's database: the vendor's
// proprietary knowledge about a vehicle model.
type StreamItem struct {
	// ECUIndex selects the vehicle binding.
	ECUIndex int
	// Label is the display name ("Engine speed").
	Label string
	Unit  string
	// Enum marks state items with no formula.
	Enum bool
	// DID is set on UDS cars.
	DID uint16
	// LocalID / ESVIndex locate the value on KWP cars.
	LocalID  byte
	ESVIndex int
	// Width is the UDS data width in bytes.
	Width int
	// Decode applies the proprietary formula to raw bytes.
	Decode func(data []byte) (float64, bool)
	// Min, Max bound plausible displayed values.
	Min, Max float64
}

// ActuatorItem is one active test in the tool's database.
type ActuatorItem struct {
	ECUIndex int
	Label    string
	Spec     ecu.ActuatorSpec
}

// Tool is one simulated diagnostic tool attached to a vehicle.
type Tool struct {
	Name    string
	Quality Quality

	veh   *vehicle.Vehicle
	clock *sim.Clock

	clients   map[int]vehicle.Client
	obdClient vehicle.Client

	streams   []StreamItem
	actuators []ActuatorItem

	// UI state machine.
	screen      string
	selectedECU int
	page        int
	selected    map[int]bool // stream indices selected for live view
	liveRows    []liveRow
	activeIdx   int
	obdRows     []obdRow
	dtcRows     []dtcRow
	unlocked    map[int]bool
	identRead   map[int]bool
	testRunning bool
	sessionSent map[int]bool

	pollErrs int
	retries  int

	// Backoff, when non-nil, runs between request retries with the
	// 1-based attempt number. The default is nil: the simulated bus has no
	// transient congestion to wait out, and sleeping on the shared rig
	// clock would shift every capture timestamp. A live-bus binding
	// installs a real (exponential) sleep here.
	Backoff func(attempt int)
}

type liveRow struct {
	streamIdx int
	value     string
	hasValue  bool
}

// PageSize is how many stream items one selection page shows (the paper's
// planner experiment clicks 14 ESVs on one screen).
const PageSize = 14

// New attaches a tool to a vehicle. The tool name decides the quality
// class: "LAUNCH X431" renders on the small screen, everything else on the
// large one.
func New(name string, v *vehicle.Vehicle) (*Tool, error) {
	q := QualityHigh
	if name == "LAUNCH X431" {
		q = QualityLow
	}
	t := &Tool{
		Name: name, Quality: q, veh: v, clock: v.Clock,
		clients:     map[int]vehicle.Client{},
		selected:    map[int]bool{},
		sessionSent: map[int]bool{},
		unlocked:    map[int]bool{},
		identRead:   map[int]bool{},
		screen:      "home",
	}
	t.buildDatabase()
	return t, nil
}

// ForProfile builds the vehicle for a fleet profile and attaches the
// profile's tool.
func ForProfile(p vehicle.Profile, clock *sim.Clock) (*Tool, *vehicle.Vehicle, error) {
	v := vehicle.Build(p, clock)
	t, err := New(p.Tool, v)
	if err != nil {
		v.Close()
		return nil, nil, err
	}
	return t, v, nil
}

// Close releases all transport clients.
func (t *Tool) Close() {
	for _, c := range t.clients {
		c.Close()
	}
	t.clients = map[int]vehicle.Client{}
	if t.obdClient != nil {
		t.obdClient.Close()
		t.obdClient = nil
	}
}

// buildDatabase mirrors the vendor's model coverage from the vehicle's ECU
// specs.
func (t *Tool) buildDatabase() {
	for i, b := range t.veh.Bindings() {
		for _, did := range b.ECU.DIDs() {
			spec, _ := b.ECU.DIDSpecFor(did)
			codec := spec.Codec
			t.streams = append(t.streams, StreamItem{
				ECUIndex: i, Label: spec.Name, Unit: spec.Unit, Enum: spec.Enum,
				DID: did, Width: codec.Width,
				Decode: func(data []byte) (float64, bool) {
					if len(data) != codec.Width {
						return 0, false
					}
					raw := uint64(0)
					for _, by := range data {
						raw = raw<<8 | uint64(by)
					}
					return codec.Decode(raw), true
				},
				Min: spec.Min, Max: spec.Max,
			})
		}
		for _, lid := range b.ECU.Locals() {
			ls, _ := b.ECU.LocalSpecFor(lid)
			for k, es := range ls.ESVs {
				es := es
				t.streams = append(t.streams, StreamItem{
					ECUIndex: i, Label: es.Name, Unit: es.Unit, Enum: es.Enum,
					LocalID: lid, ESVIndex: k, Width: kwp.ESVSize,
					Decode: func(data []byte) (float64, bool) {
						if len(data) != kwp.ESVSize {
							return 0, false
						}
						e := kwp.ESV{FType: data[0], X0: data[1], X1: data[2]}
						if es.Enum {
							return float64(e.X1), true
						}
						return e.Decode()
					},
					Min: es.Min, Max: es.Max,
				})
			}
		}
		for _, a := range b.ECU.Actuators() {
			t.actuators = append(t.actuators, ActuatorItem{ECUIndex: i, Label: a.Name, Spec: a})
		}
	}
}

// Streams exposes the tool's readable-item database (used by experiment
// ground truth, never by the reverser).
func (t *Tool) Streams() []StreamItem { return append([]StreamItem(nil), t.streams...) }

// Actuators exposes the active-test database.
func (t *Tool) Actuators() []ActuatorItem { return append([]ActuatorItem(nil), t.actuators...) }

// PollErrors counts failed live-data requests.
func (t *Tool) PollErrors() int { return t.pollErrs }

// Retries counts request retransmissions performed by the polling paths.
func (t *Tool) Retries() int { return t.retries }

// pollRetries bounds how many times one diagnostic request is retried
// before its poll cycle gives up (real tools retransmit a few times before
// showing a read error).
const pollRetries = 2

// request sends one diagnostic request with bounded retry: a transport
// error is retried up to pollRetries times, invoking the Backoff hook
// between attempts. The response (which may still be a negative response —
// the callers check) is returned as soon as any attempt succeeds.
func (t *Tool) request(c vehicle.Client, req []byte) ([]byte, error) {
	var err error
	for attempt := 0; ; attempt++ {
		var resp []byte
		resp, err = c.Request(req)
		if err == nil {
			return resp, nil
		}
		if attempt >= pollRetries {
			return nil, err
		}
		t.retries++
		if t.Backoff != nil {
			t.Backoff(attempt + 1)
		}
	}
}

func (t *Tool) client(ecuIdx int) (vehicle.Client, error) {
	if c, ok := t.clients[ecuIdx]; ok {
		return c, nil
	}
	c, err := vehicle.Connect(t.veh, t.veh.Bindings()[ecuIdx])
	if err != nil {
		return nil, err
	}
	t.clients[ecuIdx] = c
	return c, nil
}

// ensureSession sends the extended-session prologue once per ECU on UDS
// cars (real tools do this before data streams and active tests).
func (t *Tool) ensureSession(ecuIdx int) {
	if t.veh.Profile.Protocol != vehicle.UDS || t.sessionSent[ecuIdx] {
		return
	}
	c, err := t.client(ecuIdx)
	if err != nil {
		t.pollErrs++
		return
	}
	if _, err := t.request(c, []byte{uds.SIDDiagnosticSessionControl, uds.SessionExtended}); err != nil {
		t.pollErrs++
		return
	}
	t.sessionSent[ecuIdx] = true
}

// --- UI state machine ---

// ScreenName reports the current logical screen.
func (t *Tool) ScreenName() string { return t.screen }

// Click delivers a tap at screen coordinates; it returns true if a widget
// reacted. The rig calls this through the robotic clicker.
func (t *Tool) Click(x, y int) bool {
	s := t.Screen()
	w, ok := s.WidgetAt(x, y)
	if !ok || (w.Kind != ui.Button && w.Kind != ui.IconButton) {
		return false
	}
	t.activate(w.ID)
	return true
}

// ClickWidget activates a widget by ID (tests and the rig's planner resolve
// coordinates first; this is the shared path).
func (t *Tool) ClickWidget(id string) bool {
	s := t.Screen()
	w, ok := s.FindByID(id)
	if !ok || (w.Kind != ui.Button && w.Kind != ui.IconButton) {
		return false
	}
	t.activate(w.ID)
	return true
}

func (t *Tool) activate(id string) {
	switch {
	case id == "home.diag":
		t.screen = "ecu-list"
	case id == "nav.back":
		t.goBack()
	case hasPrefix(id, "ecu."):
		fmt.Sscanf(id, "ecu.%d", &t.selectedECU)
		t.screen = "func-menu"
	case id == "func.stream":
		t.page = 0
		t.selected = map[int]bool{}
		t.screen = "stream-select"
	case id == "func.active":
		t.screen = "active-list"
	case id == "func.obd":
		t.screen = "obd-live"
	case id == "func.dtc":
		t.readDTCs()
		t.screen = "dtc-list"
	case id == "func.cleardtc":
		t.clearDTCs()
	case hasPrefix(id, "sel.item."):
		var idx int
		fmt.Sscanf(id, "sel.item.%d", &idx)
		if idx >= 0 && idx < len(t.streams) {
			t.selected[idx] = !t.selected[idx]
		}
	case id == "sel.next":
		if (t.page+1)*PageSize < len(t.ecuStreamIndices()) {
			t.page++
		}
	case id == "sel.prev":
		if t.page > 0 {
			t.page--
		}
	case id == "sel.ok":
		t.buildLiveRows()
		t.screen = "live-data"
	case hasPrefix(id, "act.item."):
		var idx int
		fmt.Sscanf(id, "act.item.%d", &idx)
		if idx >= 0 && idx < len(t.actuators) {
			t.activeIdx = idx
			t.screen = "active-run"
			t.startActiveTest()
		}
	case id == "act.stop":
		t.stopActiveTest()
	}
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

func (t *Tool) goBack() {
	switch t.screen {
	case "ecu-list":
		t.screen = "home"
	case "func-menu":
		t.screen = "ecu-list"
	case "stream-select", "active-list", "obd-live", "dtc-list":
		t.screen = "func-menu"
	case "live-data":
		t.screen = "stream-select"
	case "active-run":
		t.stopActiveTest()
		t.screen = "active-list"
	}
}

// ecuStreamIndices lists the stream-database indices belonging to the
// selected ECU.
func (t *Tool) ecuStreamIndices() []int {
	var out []int
	for i, s := range t.streams {
		if s.ECUIndex == t.selectedECU {
			out = append(out, i)
		}
	}
	return out
}

func (t *Tool) buildLiveRows() {
	t.liveRows = nil
	for _, i := range t.ecuStreamIndices() {
		if t.selected[i] {
			t.liveRows = append(t.liveRows, liveRow{streamIdx: i})
		}
	}
}

// SelectAllOnECU marks every stream of the current ECU (convenience used by
// the rig's "Select All" path).
func (t *Tool) SelectAllOnECU() {
	for _, i := range t.ecuStreamIndices() {
		t.selected[i] = true
	}
}
