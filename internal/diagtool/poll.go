package diagtool

import (
	"fmt"

	"dpreverser/internal/vehicle"

	"dpreverser/internal/kwp"
	"dpreverser/internal/obd"
	"dpreverser/internal/uds"
)

// maxDIDsPerRequest bounds how many DIDs one ReadDataByIdentifier request
// carries. Two keeps the request itself single-frame while data-bearing
// responses straddle the single/multi boundary — the Table 9 mix (55%
// single, 32% multi).
const maxDIDsPerRequest = 2

// Poll performs one refresh cycle for the current screen: live data
// screens re-read their values from the vehicle; other screens are static.
// The rig calls Poll on a fixed cadence while recording.
func (t *Tool) Poll() {
	switch t.screen {
	case "live-data":
		t.pollLiveData()
	case "obd-live":
		t.pollOBD()
	}
}

func (t *Tool) pollLiveData() {
	if len(t.liveRows) == 0 {
		return
	}
	t.ensureSession(t.selectedECU)
	c, err := t.client(t.selectedECU)
	if err != nil {
		t.pollErrs++
		return
	}
	if t.veh.Profile.Protocol == vehicle.UDS {
		t.pollUDS(c)
		return
	}
	t.pollKWP(c)
}

func (t *Tool) pollUDS(c vehicle.Client) {
	// Batch the selected DIDs in row order.
	for start := 0; start < len(t.liveRows); start += maxDIDsPerRequest {
		end := start + maxDIDsPerRequest
		if end > len(t.liveRows) {
			end = len(t.liveRows)
		}
		batch := t.liveRows[start:end]
		dids := make([]uint16, len(batch))
		for i, row := range batch {
			dids[i] = t.streams[row.streamIdx].DID
		}
		req, err := uds.BuildRDBIRequest(dids...)
		if err != nil {
			t.pollErrs++
			continue
		}
		resp, err := t.request(c, req)
		if err != nil || !uds.IsPositiveResponse(resp, uds.SIDReadDataByIdentifier) {
			t.pollErrs++
			continue
		}
		records, err := uds.ParseRDBIResponse(resp, dids)
		if err != nil {
			t.pollErrs++
			continue
		}
		for i, rec := range records {
			row := &t.liveRows[start+i]
			item := t.streams[row.streamIdx]
			if v, ok := item.Decode(rec.Data); ok {
				row.value = formatValue(v, item.Enum)
				row.hasValue = true
			}
		}
	}
}

func (t *Tool) pollKWP(c vehicle.Client) {
	// VCDS-style prologue: read the controller identification once.
	if !t.identRead[t.selectedECU] {
		t.identRead[t.selectedECU] = true
		if _, err := t.request(c, kwp.BuildIdentRequest(kwp.IdentOptionECUIdent)); err != nil {
			t.pollErrs++
		}
	}
	// One read per measuring block that has a selected row.
	blocks := map[byte]bool{}
	for _, row := range t.liveRows {
		blocks[t.streams[row.streamIdx].LocalID] = true
	}
	for lid := byte(0); lid < 0xFF; lid++ {
		if !blocks[lid] {
			continue
		}
		resp, err := t.request(c, kwp.BuildReadRequest(lid))
		if err != nil || !kwp.IsPositiveResponse(resp, kwp.SIDReadDataByLocalIdentifier) {
			t.pollErrs++
			continue
		}
		_, esvs, err := kwp.ParseReadResponse(resp)
		if err != nil {
			t.pollErrs++
			continue
		}
		for i := range t.liveRows {
			row := &t.liveRows[i]
			item := t.streams[row.streamIdx]
			if item.LocalID != lid || item.ESVIndex >= len(esvs) {
				continue
			}
			e := esvs[item.ESVIndex]
			raw := []byte{e.FType, e.X0, e.X1}
			if v, ok := item.Decode(raw); ok {
				row.value = formatValue(v, item.Enum)
				row.hasValue = true
			}
		}
	}
}

type obdRow struct {
	pid      byte
	value    string
	hasValue bool
}

func (t *Tool) pollOBD() {
	if t.obdClient == nil {
		t.obdClient = vehicle.ConnectOBD(t.veh)
	}
	if len(t.obdRows) == 0 {
		for _, pid := range obd.PIDs() {
			t.obdRows = append(t.obdRows, obdRow{pid: pid})
		}
	}
	for i := range t.obdRows {
		row := &t.obdRows[i]
		resp, err := t.request(t.obdClient, obd.BuildRequest(row.pid))
		if err != nil {
			t.pollErrs++
			continue
		}
		_, v, err := obd.ParseResponse(resp)
		if err != nil {
			t.pollErrs++
			continue
		}
		row.value = formatValue(v, false)
		row.hasValue = true
	}
}

// dtcRow is one trouble-code display line.
type dtcRow struct {
	code   string
	status string
}

// readDTCs populates the trouble-code screen via ReadDTCInformation.
func (t *Tool) readDTCs() {
	t.dtcRows = nil
	if t.veh.Profile.Protocol != vehicle.UDS {
		return // the KWP DTC services are not modelled
	}
	c, err := t.client(t.selectedECU)
	if err != nil {
		t.pollErrs++
		return
	}
	resp, err := t.request(c, uds.BuildReadDTCRequest(0xFF))
	if err != nil {
		t.pollErrs++
		return
	}
	_, dtcs, err := uds.ParseReadDTCResponse(resp)
	if err != nil {
		t.pollErrs++
		return
	}
	for _, d := range dtcs {
		t.dtcRows = append(t.dtcRows, dtcRow{code: d.String(), status: fmt.Sprintf("%02X", d.Status)})
	}
}

// clearDTCs sends ClearDiagnosticInformation for all groups.
func (t *Tool) clearDTCs() {
	if t.veh.Profile.Protocol != vehicle.UDS {
		return
	}
	c, err := t.client(t.selectedECU)
	if err != nil {
		t.pollErrs++
		return
	}
	if _, err := t.request(c, uds.BuildClearDTCRequest(0xFFFFFF)); err != nil {
		t.pollErrs++
	}
}

// ensureUnlocked performs the vendor's seed-key exchange once per ECU on
// security-gated cars.
func (t *Tool) ensureUnlocked(ecuIdx int) {
	if !t.veh.Profile.SecuredIO || t.unlocked[ecuIdx] {
		return
	}
	c, err := t.client(ecuIdx)
	if err != nil {
		t.pollErrs++
		return
	}
	seedResp, err := t.request(c, []byte{uds.SIDSecurityAccess, 0x01})
	if err != nil || !uds.IsPositiveResponse(seedResp, uds.SIDSecurityAccess) || len(seedResp) < 3 {
		t.pollErrs++
		return
	}
	key := uds.DefaultSeedToKey(seedResp[2:])
	keyResp, err := t.request(c, append([]byte{uds.SIDSecurityAccess, 0x02}, key...))
	if err != nil || !uds.IsPositiveResponse(keyResp, uds.SIDSecurityAccess) {
		t.pollErrs++
		return
	}
	t.unlocked[ecuIdx] = true
}

// startActiveTest performs the paper's §4.5 control prologue for the
// selected actuator.
func (t *Tool) startActiveTest() {
	item := t.actuators[t.activeIdx]
	t.ensureSession(item.ECUIndex)
	t.ensureUnlocked(item.ECUIndex)
	c, err := t.client(item.ECUIndex)
	if err != nil {
		t.pollErrs++
		return
	}
	spec := item.Spec
	if spec.DID != 0 {
		// UDS IO control: freeze, then short-term adjustment.
		if _, err := t.request(c, uds.BuildIOControlRequest(uds.IOControlRequest{
			DID: spec.DID, Param: uds.IOFreezeCurrentState})); err != nil {
			t.pollErrs++
			return
		}
		if _, err := t.request(c, uds.BuildIOControlRequest(uds.IOControlRequest{
			DID: spec.DID, Param: uds.IOShortTermAdjustment, State: spec.State})); err != nil {
			t.pollErrs++
			return
		}
	} else {
		// Legacy IO control by local identifier (service 0x30).
		req := append([]byte{kwp.SIDIOControlByLocalIdentifier, spec.LocalID, uds.IOShortTermAdjustment}, spec.State...)
		if _, err := t.request(c, req); err != nil {
			t.pollErrs++
			return
		}
	}
	t.testRunning = true
}

// stopActiveTest returns control to the ECU.
func (t *Tool) stopActiveTest() {
	if !t.testRunning {
		return
	}
	item := t.actuators[t.activeIdx]
	c, err := t.client(item.ECUIndex)
	if err != nil {
		t.pollErrs++
		return
	}
	spec := item.Spec
	if spec.DID != 0 {
		if _, err := t.request(c, uds.BuildIOControlRequest(uds.IOControlRequest{
			DID: spec.DID, Param: uds.IOReturnControlToECU})); err != nil {
			t.pollErrs++
		}
	} else {
		if _, err := t.request(c, []byte{kwp.SIDIOControlByLocalIdentifier, spec.LocalID, uds.IOReturnControlToECU}); err != nil {
			t.pollErrs++
		}
	}
	t.testRunning = false
}

// TestRunning reports whether an active test is driving an actuator.
func (t *Tool) TestRunning() bool { return t.testRunning }

// formatValue renders a value the way handheld tools do: textual state
// names for enums ("Off"/"On"/"State 3"), numbers with magnitude-dependent
// precision otherwise.
func formatValue(v float64, enum bool) string {
	switch {
	case enum:
		return stateText(v)
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// stateText names a state value the way tools render stateful ESVs.
func stateText(v float64) string {
	switch int(v) {
	case 0:
		return "Off"
	case 1:
		return "On"
	default:
		return fmt.Sprintf("State %d", int(v))
	}
}
