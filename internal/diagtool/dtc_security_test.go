package diagtool

import (
	"strconv"
	"strings"
	"testing"

	"dpreverser/internal/can"
	"dpreverser/internal/ui"
)

func TestDTCScreenListsStoredCodes(t *testing.T) {
	tool, veh, _ := newTool(t, "Car L")
	// Find an ECU with stored DTCs.
	ecuIdx := -1
	for i, b := range veh.Bindings() {
		if len(b.ECU.DTCs()) > 0 {
			ecuIdx = i
			break
		}
	}
	if ecuIdx < 0 {
		t.Skip("no ECU with DTCs on this seed")
	}
	tool.ClickWidget("home.diag")
	tool.ClickWidget("ecu." + strconv.Itoa(ecuIdx))
	tool.ClickWidget("func.dtc")
	if tool.ScreenName() != "dtc-list" {
		t.Fatalf("screen = %q", tool.ScreenName())
	}
	s := tool.Screen()
	codes := 0
	for _, w := range s.Widgets {
		if strings.HasPrefix(w.ID, "dtc.code.") {
			codes++
			if len(w.Text) != 5 || (w.Text[0] != 'P' && w.Text[0] != 'C' && w.Text[0] != 'B' && w.Text[0] != 'U') {
				t.Fatalf("DTC text %q not in SAE form", w.Text)
			}
		}
	}
	if codes != len(veh.Bindings()[ecuIdx].ECU.DTCs()) {
		t.Fatalf("screen shows %d codes, ECU stores %d", codes, len(veh.Bindings()[ecuIdx].ECU.DTCs()))
	}
}

func TestClearDTCsEmptiesStore(t *testing.T) {
	tool, veh, _ := newTool(t, "Car L")
	ecuIdx := -1
	for i, b := range veh.Bindings() {
		if len(b.ECU.DTCs()) > 0 {
			ecuIdx = i
			break
		}
	}
	if ecuIdx < 0 {
		t.Skip("no ECU with DTCs on this seed")
	}
	tool.ClickWidget("home.diag")
	tool.ClickWidget("ecu." + strconv.Itoa(ecuIdx))
	tool.ClickWidget("func.cleardtc")
	if got := veh.Bindings()[ecuIdx].ECU.DTCs(); len(got) != 0 {
		t.Fatalf("DTCs after clear = %v", got)
	}
	// Reading now shows the empty screen.
	tool.ClickWidget("func.dtc")
	s := tool.Screen()
	if _, ok := s.FindByID("dtc.none"); !ok {
		t.Fatal("empty DTC screen missing placeholder")
	}
}

func TestSecuredCarActiveTestUnlocksFirst(t *testing.T) {
	tool, veh, _ := newTool(t, "Car H") // SecuredIO
	snif := can.NewSniffer(veh.Bus, nil)

	ecuIdx := -1
	var actName string
	for i, b := range veh.Bindings() {
		if acts := b.ECU.Actuators(); len(acts) > 0 {
			ecuIdx = i
			actName = acts[0].Name
			break
		}
	}
	if ecuIdx < 0 {
		t.Fatal("no actuators")
	}
	tool.ClickWidget("home.diag")
	tool.ClickWidget("ecu." + strconv.Itoa(ecuIdx))
	tool.ClickWidget("func.active")
	s := tool.Screen()
	for _, w := range s.Widgets {
		if strings.HasPrefix(w.ID, "act.item.") && w.Text == actName {
			tool.ClickWidget(w.ID)
			break
		}
	}
	if !veh.Bindings()[ecuIdx].ECU.ActuatorActive(actName) {
		t.Fatal("secured actuator not driven after unlock")
	}
	if tool.PollErrors() != 0 {
		t.Fatalf("poll errors = %d", tool.PollErrors())
	}
	// The seed/key exchange must be on the wire.
	sawSeed, sawKey := false, false
	for _, f := range snif.Frames() {
		p := f.Payload()
		if len(p) >= 3 && p[1] == 0x27 {
			switch p[2] {
			case 0x01:
				sawSeed = true
			case 0x02:
				sawKey = true
			}
		}
	}
	if !sawSeed || !sawKey {
		t.Fatalf("security exchange missing from traffic (seed=%v key=%v)", sawSeed, sawKey)
	}
}

func TestDTCScreenNavigationBack(t *testing.T) {
	tool, _, _ := newTool(t, "Car L")
	tool.ClickWidget("home.diag")
	tool.ClickWidget("ecu.0")
	tool.ClickWidget("func.dtc")
	tool.ClickWidget("nav.back")
	if tool.ScreenName() != "func-menu" {
		t.Fatalf("screen = %q", tool.ScreenName())
	}
}

func TestKWPCarDTCScreenEmpty(t *testing.T) {
	tool, _, _ := newTool(t, "Car B")
	tool.ClickWidget("home.diag")
	tool.ClickWidget("ecu.0")
	tool.ClickWidget("func.dtc")
	s := tool.Screen()
	if _, ok := s.FindByID("dtc.none"); !ok {
		t.Fatal("KWP car DTC screen should be empty")
	}
	for _, w := range s.Widgets {
		if w.Kind == ui.Value {
			t.Fatalf("unexpected value widget %q", w.ID)
		}
	}
}

func TestEnumValuesRenderAsStates(t *testing.T) {
	tool, _, _ := newTool(t, "Car M") // 14 enum ESVs
	navigateToLiveData(t, tool)
	tool.Poll()
	s := tool.Screen()
	states := 0
	for _, w := range s.Widgets {
		if w.Kind != ui.Value {
			continue
		}
		if w.Text == "Off" || w.Text == "On" || strings.HasPrefix(w.Text, "State ") {
			states++
		}
	}
	if states == 0 {
		t.Fatal("no enum values rendered as state text")
	}
}

func TestStateTextMapping(t *testing.T) {
	cases := map[float64]string{0: "Off", 1: "On", 3: "State 3"}
	for v, want := range cases {
		if got := stateText(v); got != want {
			t.Errorf("stateText(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestGoBackFromHomeStaysHome(t *testing.T) {
	tool, _, _ := newTool(t, "Car M")
	tool.goBack()
	if tool.ScreenName() != "home" {
		t.Fatalf("screen = %q", tool.ScreenName())
	}
}

func TestPollAgainstDeadVehicleCountsErrors(t *testing.T) {
	tool, veh, _ := newTool(t, "Car A")
	navigateToLiveData(t, tool)
	tool.Poll()
	if tool.PollErrors() != 0 {
		t.Fatalf("healthy poll errors = %d", tool.PollErrors())
	}
	// The car goes away (ignition off): every request times out and the
	// tool must count errors rather than crash or show stale success.
	veh.Close()
	tool.Poll()
	if tool.PollErrors() == 0 {
		t.Fatal("dead vehicle produced no poll errors")
	}
}

func TestKWPPollAgainstDeadVehicle(t *testing.T) {
	tool, veh, _ := newTool(t, "Car C")
	navigateToLiveData(t, tool)
	tool.Poll()
	errsBefore := tool.PollErrors()
	veh.Close()
	tool.Poll()
	if tool.PollErrors() <= errsBefore {
		t.Fatal("dead KWP vehicle produced no poll errors")
	}
}

func TestActiveTestAgainstDeadVehicle(t *testing.T) {
	tool, veh, _ := newTool(t, "Car I")
	tool.ClickWidget("home.diag")
	ecuIdx := -1
	for i, b := range veh.Bindings() {
		if len(b.ECU.Actuators()) > 0 {
			ecuIdx = i
			break
		}
	}
	tool.ClickWidget("ecu." + strconv.Itoa(ecuIdx))
	tool.ClickWidget("func.active")
	veh.Close()
	s := tool.Screen()
	for _, w := range s.Widgets {
		if strings.HasPrefix(w.ID, "act.item.") {
			tool.ClickWidget(w.ID)
			break
		}
	}
	if tool.TestRunning() {
		t.Fatal("test claims to run against a dead vehicle")
	}
	if tool.PollErrors() == 0 {
		t.Fatal("no errors counted")
	}
}

func TestDTCReadAgainstDeadVehicle(t *testing.T) {
	tool, veh, _ := newTool(t, "Car L")
	tool.ClickWidget("home.diag")
	tool.ClickWidget("ecu.0")
	veh.Close()
	tool.ClickWidget("func.dtc")
	if tool.PollErrors() == 0 {
		t.Fatal("DTC read against dead vehicle produced no error")
	}
	tool.ClickWidget("nav.back")
	tool.ClickWidget("func.cleardtc")
	if tool.PollErrors() < 2 {
		t.Fatal("DTC clear against dead vehicle produced no error")
	}
}
