package diagtool

import (
	"fmt"

	"dpreverser/internal/obd"
	"dpreverser/internal/ui"
)

// geometry scales widget layout to the screen class.
type geometry struct {
	width, height int
	rowH          int
	labelX        int
	labelW        int
	valueX        int
	valueW        int
	unitX         int
	unitW         int
	topY          int
}

func (t *Tool) geom() geometry {
	if t.Quality == QualityLow {
		return geometry{width: 480, height: 320, rowH: 20,
			labelX: 10, labelW: 200, valueX: 220, valueW: 90, unitX: 320, unitW: 60, topY: 30}
	}
	return geometry{width: 1024, height: 768, rowH: 44,
		labelX: 40, labelW: 360, valueX: 420, valueW: 160, unitX: 600, unitW: 120, topY: 60}
}

// Screen renders the tool's current UI state as widgets — what the cameras
// see and the robotic clicker targets.
func (t *Tool) Screen() ui.Screen {
	g := t.geom()
	s := ui.Screen{Name: t.screen, Width: g.width, Height: g.height}
	addButton := func(id, text string, row int) {
		s.Widgets = append(s.Widgets, ui.Widget{
			ID: id, Kind: ui.Button, Text: text,
			X: g.labelX, Y: g.topY + row*g.rowH, W: g.labelW, H: g.rowH - 4,
		})
	}
	addBack := func() {
		// The back control is an icon-only widget (no OCR-able text), the
		// case §3.1 handles with shape similarity.
		s.Widgets = append(s.Widgets, ui.Widget{
			ID: "nav.back", Kind: ui.IconButton, Icon: "back-arrow",
			X: g.width - 70, Y: g.height - 50, W: 60, H: 40,
		})
	}
	addTitle := func(title string) {
		s.Title = title
		s.Widgets = append(s.Widgets, ui.Widget{
			ID: "title", Kind: ui.Label, Text: title,
			X: g.labelX, Y: g.topY - g.rowH, W: g.labelW, H: g.rowH - 4,
		})
	}

	switch t.screen {
	case "home":
		addTitle(t.Name)
		addButton("home.diag", "Diagnostics", 0)
		addButton("home.settings", "Settings", 1)
		addButton("home.playback", "Data Playback", 2)
		addButton("home.update", "Software Update", 3)

	case "ecu-list":
		addTitle(fmt.Sprintf("%s — Control Units", t.veh.Profile.Model))
		for i, b := range t.veh.Bindings() {
			addButton(fmt.Sprintf("ecu.%d", i), b.ECU.Name, i)
		}
		addBack()

	case "func-menu":
		name := t.veh.Bindings()[t.selectedECU].ECU.Name
		addTitle(fmt.Sprintf("%s — Functions", name))
		addButton("func.stream", "Read Data Stream", 0)
		addButton("func.active", "Active Test", 1)
		addButton("func.obd", "OBD-II Live Data", 2)
		addButton("func.dtc", "Read Trouble Codes", 3)
		addButton("func.cleardtc", "Clear Trouble Codes", 4)
		addBack()

	case "stream-select":
		addTitle("Select Data Stream Items")
		indices := t.ecuStreamIndices()
		start := t.page * PageSize
		row := 0
		for i := start; i < len(indices) && i < start+PageSize; i++ {
			idx := indices[i]
			text := t.streams[idx].Label
			if t.selected[idx] {
				text = "[x] " + text
			} else {
				text = "[ ] " + text
			}
			addButton(fmt.Sprintf("sel.item.%d", idx), text, row)
			row++
		}
		// Footer controls sit in a separate column.
		footerY := g.topY + PageSize*g.rowH
		for i, ctl := range []struct{ id, text string }{
			{"sel.prev", "Prev Page"}, {"sel.next", "Next Page"}, {"sel.ok", "OK"},
		} {
			s.Widgets = append(s.Widgets, ui.Widget{
				ID: ctl.id, Kind: ui.Button, Text: ctl.text,
				X: g.labelX + i*(g.labelW/3+10), Y: footerY, W: g.labelW / 3, H: g.rowH - 4,
			})
		}
		addBack()

	case "live-data":
		addTitle("Data Stream")
		for k, row := range t.liveRows {
			item := t.streams[row.streamIdx]
			y := g.topY + k*g.rowH
			s.Widgets = append(s.Widgets,
				ui.Widget{ID: fmt.Sprintf("row.label.%d", k), Kind: ui.Label, Text: item.Label,
					X: g.labelX, Y: y, W: g.labelW, H: g.rowH - 4},
				ui.Widget{ID: fmt.Sprintf("row.val.%d", k), Kind: ui.Value, Text: row.value,
					X: g.valueX, Y: y, W: g.valueW, H: g.rowH - 4},
				ui.Widget{ID: fmt.Sprintf("row.unit.%d", k), Kind: ui.Label, Text: item.Unit,
					X: g.unitX, Y: y, W: g.unitW, H: g.rowH - 4},
			)
		}
		addBack()

	case "obd-live":
		addTitle("OBD-II Live Data")
		for k, row := range t.obdRows {
			spec, _ := obd.Lookup(row.pid)
			y := g.topY + k*g.rowH
			s.Widgets = append(s.Widgets,
				ui.Widget{ID: fmt.Sprintf("obd.label.%d", k), Kind: ui.Label, Text: spec.Name,
					X: g.labelX, Y: y, W: g.labelW, H: g.rowH - 4},
				ui.Widget{ID: fmt.Sprintf("obd.val.%d", k), Kind: ui.Value, Text: row.value,
					X: g.valueX, Y: y, W: g.valueW, H: g.rowH - 4},
				ui.Widget{ID: fmt.Sprintf("obd.unit.%d", k), Kind: ui.Label, Text: spec.Unit,
					X: g.unitX, Y: y, W: g.unitW, H: g.rowH - 4},
			)
		}
		addBack()

	case "dtc-list":
		addTitle("Trouble Codes")
		if len(t.dtcRows) == 0 {
			s.Widgets = append(s.Widgets, ui.Widget{
				ID: "dtc.none", Kind: ui.Label, Text: "No trouble codes stored",
				X: g.labelX, Y: g.topY, W: g.labelW, H: g.rowH - 4,
			})
		}
		for k, row := range t.dtcRows {
			y := g.topY + k*g.rowH
			s.Widgets = append(s.Widgets,
				ui.Widget{ID: fmt.Sprintf("dtc.code.%d", k), Kind: ui.Label, Text: row.code,
					X: g.labelX, Y: y, W: g.labelW, H: g.rowH - 4},
				ui.Widget{ID: fmt.Sprintf("dtc.status.%d", k), Kind: ui.Label, Text: row.status,
					X: g.valueX, Y: y, W: g.valueW, H: g.rowH - 4},
			)
		}
		addBack()

	case "active-list":
		addTitle("Active Test")
		row := 0
		for i, a := range t.actuators {
			if a.ECUIndex != t.selectedECU {
				continue
			}
			addButton(fmt.Sprintf("act.item.%d", i), a.Label, row)
			row++
		}
		addBack()

	case "active-run":
		item := t.actuators[t.activeIdx]
		addTitle("Active Test")
		status := "Stopped"
		if t.testRunning {
			status = "Running"
		}
		s.Widgets = append(s.Widgets,
			ui.Widget{ID: "act.name", Kind: ui.Label, Text: "Testing " + item.Label,
				X: g.labelX, Y: g.topY, W: g.labelW, H: g.rowH - 4},
			ui.Widget{ID: "act.status", Kind: ui.Value, Text: status,
				X: g.valueX, Y: g.topY, W: g.valueW, H: g.rowH - 4},
		)
		addButton("act.stop", "Stop", 2)
		addBack()
	}
	return s
}
