package diagtool

import (
	"errors"
	"testing"
)

// flakyClient fails its first n requests, then answers. It models the
// transient bus congestion the retry path exists for.
type flakyClient struct {
	failures int
	calls    int
	resp     []byte
}

func (f *flakyClient) Request(req []byte) ([]byte, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, errors.New("bus congestion")
	}
	return f.resp, nil
}

func (f *flakyClient) Close() {}

func TestRequestRetriesTransientFailures(t *testing.T) {
	tool, _, _ := newTool(t, "Car M")
	var attempts []int
	tool.Backoff = func(n int) { attempts = append(attempts, n) }

	fc := &flakyClient{failures: 2, resp: []byte{0x50, 0x03}}
	resp, err := tool.request(fc, []byte{0x10, 0x03})
	if err != nil {
		t.Fatalf("request failed despite retry budget: %v", err)
	}
	if string(resp) != string(fc.resp) {
		t.Fatalf("resp = % X", resp)
	}
	if fc.calls != 3 {
		t.Fatalf("client saw %d calls, want 3", fc.calls)
	}
	if tool.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", tool.Retries())
	}
	if len(attempts) != 2 || attempts[0] != 1 || attempts[1] != 2 {
		t.Fatalf("backoff attempts = %v, want [1 2]", attempts)
	}
}

func TestRequestGivesUpAfterBudget(t *testing.T) {
	tool, _, _ := newTool(t, "Car M")
	fc := &flakyClient{failures: 10}
	if _, err := tool.request(fc, []byte{0x10, 0x03}); err == nil {
		t.Fatal("request succeeded against a dead client")
	}
	// One initial try plus pollRetries retries.
	if fc.calls != pollRetries+1 {
		t.Fatalf("client saw %d calls, want %d", fc.calls, pollRetries+1)
	}
	if tool.Retries() != pollRetries {
		t.Fatalf("Retries() = %d, want %d", tool.Retries(), pollRetries)
	}
}

func TestRequestNoRetryOnSuccess(t *testing.T) {
	tool, _, _ := newTool(t, "Car M")
	fc := &flakyClient{resp: []byte{0x50, 0x03}}
	if _, err := tool.request(fc, []byte{0x10, 0x03}); err != nil {
		t.Fatal(err)
	}
	if fc.calls != 1 || tool.Retries() != 0 {
		t.Fatalf("calls = %d retries = %d", fc.calls, tool.Retries())
	}
}
