// Package isotp implements ISO 15765-2, the transport/network layer that
// carries diagnostic messages longer than one CAN frame (paper §2.2, Fig. 7).
//
// It provides three layers:
//
//   - a pure codec: Segment splits a payload into single/first/consecutive
//     frame data fields, Classify recognises frame types (the paper's
//     "Step 1: Screening Frames"), and Reassembler rebuilds payloads
//     ("Step 2: Assembling Payload");
//   - FlowControl encode/decode for the receiver-paced handshake;
//   - Endpoint, a full-duplex binding of the codec to a CAN bus with the
//     flow-control state machine, used by both the simulated diagnostic
//     tools and the simulated ECUs.
package isotp

import (
	"errors"
	"fmt"
	"time"

	"dpreverser/internal/colstore"
)

// Frame-type nibbles per ISO 15765-2 (high nibble of the first data byte).
const (
	pciSingle     = 0x0
	pciFirst      = 0x1
	pciConsec     = 0x2
	pciFlowContrl = 0x3
)

// FrameType classifies an ISO 15765-2 frame.
type FrameType int

// Frame types. Invalid marks data that cannot be an ISO-TP frame (empty, or
// a reserved PCI nibble).
const (
	Invalid FrameType = iota
	SingleFrame
	FirstFrame
	ConsecutiveFrame
	FlowControlFrame
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case SingleFrame:
		return "SF"
	case FirstFrame:
		return "FF"
	case ConsecutiveFrame:
		return "CF"
	case FlowControlFrame:
		return "FC"
	default:
		return "invalid"
	}
}

// FlowStatus is the first field of a flow-control frame.
type FlowStatus int

// Flow statuses per ISO 15765-2.
const (
	ContinueToSend FlowStatus = 0
	Wait           FlowStatus = 1
	Overflow       FlowStatus = 2
)

// Limits of the protocol.
const (
	// MaxSingleFrame is the largest payload a single frame carries.
	MaxSingleFrame = 7
	// MaxPayload is the 12-bit first-frame length limit.
	MaxPayload = 0xFFF
	// firstFrameData is the payload carried by a first frame.
	firstFrameData = 6
	// consecFrameData is the payload carried by each consecutive frame.
	consecFrameData = 7
)

// Errors reported by the codec and reassembler.
var (
	ErrPayloadTooLong  = errors.New("isotp: payload exceeds 4095 bytes")
	ErrEmptyPayload    = errors.New("isotp: empty payload")
	ErrBadSequence     = errors.New("isotp: consecutive frame out of sequence")
	ErrDuplicateFrame  = errors.New("isotp: duplicate consecutive frame")
	ErrUnexpectedFrame = errors.New("isotp: frame unexpected in current state")
	ErrTruncatedFrame  = errors.New("isotp: frame too short for its type")
	ErrNotFlowControl  = errors.New("isotp: frame is not flow control")
)

// Classify inspects a frame's data field and reports its ISO-TP type.
func Classify(data []byte) FrameType {
	if len(data) == 0 {
		return Invalid
	}
	switch data[0] >> 4 {
	case pciSingle:
		n := int(data[0] & 0x0F)
		if n == 0 || n > MaxSingleFrame || len(data) < 1+n {
			return Invalid
		}
		return SingleFrame
	case pciFirst:
		if len(data) < 2 {
			return Invalid
		}
		return FirstFrame
	case pciConsec:
		return ConsecutiveFrame
	case pciFlowContrl:
		if len(data) < 3 {
			return Invalid
		}
		return FlowControlFrame
	default:
		return Invalid
	}
}

// Segment splits payload into ISO-TP frame data fields: either one single
// frame, or a first frame followed by consecutive frames with cycling
// sequence numbers. Frames are padded to 8 bytes with the pad byte
// (real tools pad with 0x00, 0x55 or 0xAA; the value is visible on the wire
// but carries no payload).
func Segment(payload []byte, pad byte) ([][]byte, error) {
	if len(payload) == 0 {
		return nil, ErrEmptyPayload
	}
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d", ErrPayloadTooLong, len(payload))
	}
	if len(payload) <= MaxSingleFrame {
		frame := make([]byte, 8)
		frame[0] = byte(pciSingle<<4) | byte(len(payload))
		copy(frame[1:], payload)
		for i := 1 + len(payload); i < 8; i++ {
			frame[i] = pad
		}
		return [][]byte{frame}, nil
	}

	var frames [][]byte
	ff := make([]byte, 8)
	ff[0] = byte(pciFirst<<4) | byte(len(payload)>>8)
	ff[1] = byte(len(payload))
	copy(ff[2:], payload[:firstFrameData])
	frames = append(frames, ff)

	rest := payload[firstFrameData:]
	seq := byte(1)
	for len(rest) > 0 {
		n := len(rest)
		if n > consecFrameData {
			n = consecFrameData
		}
		cf := make([]byte, 8)
		cf[0] = byte(pciConsec<<4) | seq
		copy(cf[1:], rest[:n])
		for i := 1 + n; i < 8; i++ {
			cf[i] = pad
		}
		frames = append(frames, cf)
		rest = rest[n:]
		seq = (seq + 1) & 0x0F
	}
	return frames, nil
}

// EncodeFlowControl builds a flow-control frame data field.
// blockSize 0 means "send everything without further FC"; stMin is the
// minimum CF separation in the raw ISO encoding (0x00-0x7F = ms).
func EncodeFlowControl(status FlowStatus, blockSize, stMin byte) []byte {
	return []byte{byte(pciFlowContrl<<4) | byte(status), blockSize, stMin, 0, 0, 0, 0, 0}
}

// FlowControl is a decoded flow-control frame.
type FlowControl struct {
	Status    FlowStatus
	BlockSize byte
	// STmin is the decoded minimum separation time between consecutive
	// frames.
	STmin time.Duration
}

// DecodeFlowControl parses a flow-control frame data field.
func DecodeFlowControl(data []byte) (FlowControl, error) {
	if Classify(data) != FlowControlFrame {
		return FlowControl{}, ErrNotFlowControl
	}
	fc := FlowControl{
		Status:    FlowStatus(data[0] & 0x0F),
		BlockSize: data[1],
	}
	raw := data[2]
	switch {
	case raw <= 0x7F:
		fc.STmin = time.Duration(raw) * time.Millisecond
	case raw >= 0xF1 && raw <= 0xF9:
		fc.STmin = time.Duration(raw-0xF0) * 100 * time.Microsecond
	default:
		// Reserved values are treated as the maximum per the standard.
		fc.STmin = 127 * time.Millisecond
	}
	return fc, nil
}

// Reassembler rebuilds one payload at a time from a stream of ISO-TP frame
// data fields (one reassembler per CAN ID, as the paper groups frames by
// identifier before assembling).
type Reassembler struct {
	// MinMultiFrameLen is the smallest legal first-frame length. Zero means
	// the normal-addressing default (MaxSingleFrame+1); extended-addressing
	// users (package bmwtp) lower it to 7 because their single frames carry
	// only 6 bytes.
	MinMultiFrameLen int

	// buf is in-flight assembly scratch, leased from the colstore buffer
	// pool for the duration of one transfer. It is nil whenever no
	// transfer is in flight *and* no completed message view is pending;
	// abort — the single release point — returns it on every path that
	// ends a transfer, including all resynchronisation errors.
	buf      []byte
	expected int
	nextSeq  byte
	// lastSeq/haveLast remember the previous accepted consecutive frame,
	// so a retransmitted duplicate can be recognised and skipped without
	// discarding the transfer (resynchronization under frame duplication).
	lastSeq   byte
	haveLast  bool
	inFlight  bool
	completed int
	errors    int
}

// Result is the outcome of feeding one frame to a Reassembler.
type Result struct {
	// Message is the completed payload, nil until a message completes.
	Message []byte
	// NeedFlowControl is true right after a first frame: the receiver
	// should answer with an FC frame.
	NeedFlowControl bool
}

// Feed consumes one frame's data field and returns completed messages as
// fresh heap copies the caller owns. It is FeedView plus a copy; hot
// consumers (the reverser's columnar assembler) use FeedView directly and
// copy the view into their own storage once.
func (r *Reassembler) Feed(data []byte) (Result, error) {
	res, err := r.FeedView(data)
	if res.Message != nil {
		res.Message = append([]byte(nil), res.Message...)
	}
	return res, err
}

// FeedView consumes one frame's data field. Flow-control frames are
// ignored (they belong to the opposite direction). A new first or single
// frame aborts any partial reassembly in progress, which mirrors how
// tools recover from lost frames.
//
// The returned Result.Message is a zero-copy view — into data for single
// frames, into the reassembler's pooled scratch for multi-frame messages
// — and is valid only until the next call on this reassembler (or, for
// single frames, until the caller reuses data). Callers that retain
// messages must copy; Feed does exactly that.
//
//dplint:hotpath isotp-feed
func (r *Reassembler) FeedView(data []byte) (Result, error) {
	switch Classify(data) {
	case SingleFrame:
		r.abort()
		n := int(data[0] & 0x0F)
		r.completed++
		return Result{Message: data[1 : 1+n : 1+n]}, nil

	case FirstFrame:
		r.abort()
		r.expected = int(data[0]&0x0F)<<8 | int(data[1])
		minLen := r.MinMultiFrameLen
		if minLen == 0 {
			minLen = MaxSingleFrame + 1
		}
		if r.expected < minLen {
			expected := r.expected
			r.expected = 0
			r.errors++
			return Result{}, fmt.Errorf("%w: first frame with length %d", ErrUnexpectedFrame, expected)
		}
		n := len(data) - 2
		if n > firstFrameData {
			n = firstFrameData
		}
		r.buf = append(colstore.GetBuf(r.expected), data[2:2+n]...)
		r.nextSeq = 1
		r.inFlight = true
		return Result{NeedFlowControl: true}, nil

	case ConsecutiveFrame:
		if !r.inFlight {
			r.errors++
			return Result{}, fmt.Errorf("%w: consecutive frame without first frame", ErrUnexpectedFrame)
		}
		seq := data[0] & 0x0F
		if seq != r.nextSeq {
			// A retransmitted copy of the frame just consumed is skipped
			// and the transfer salvaged; anything else is unrecoverable
			// (payload bytes are missing), so discard — returning the
			// scratch buffer — and resync on the next first frame.
			if r.haveLast && seq == r.lastSeq {
				r.errors++
				return Result{}, fmt.Errorf("%w: sequence %d repeated", ErrDuplicateFrame, seq)
			}
			r.abort()
			r.errors++
			return Result{}, fmt.Errorf("%w: got %d want %d", ErrBadSequence, seq, r.nextSeq)
		}
		r.lastSeq, r.haveLast = seq, true
		r.nextSeq = (r.nextSeq + 1) & 0x0F
		remaining := r.expected - len(r.buf)
		n := len(data) - 1
		if n > remaining {
			n = remaining
		}
		r.buf = append(r.buf, data[1:1+n]...)
		if len(r.buf) >= r.expected {
			// Completion keeps the scratch buffer: the view must survive
			// until the caller's next Feed, whose abort releases it.
			msg := r.buf[:r.expected:r.expected]
			r.expected = 0
			r.nextSeq = 0
			r.lastSeq = 0
			r.haveLast = false
			r.inFlight = false
			r.completed++
			return Result{Message: msg}, nil
		}
		return Result{}, nil

	case FlowControlFrame:
		return Result{}, nil

	default:
		r.errors++
		return Result{}, fmt.Errorf("%w: %d bytes, pci %#x", ErrTruncatedFrame, len(data), firstByte(data))
	}
}

func firstByte(data []byte) byte {
	if len(data) == 0 {
		return 0
	}
	return data[0]
}

// InFlight reports whether a multi-frame reassembly is in progress.
func (r *Reassembler) InFlight() bool { return r.inFlight }

// Completed reports how many messages this reassembler has produced.
func (r *Reassembler) Completed() int { return r.completed }

// Errors reports how many malformed or out-of-order frames were seen.
func (r *Reassembler) Errors() int { return r.errors }

// Reset discards any in-flight transfer and returns the reassembler to
// idle, releasing its pending buffer; completion and error counters are
// preserved. The assembler uses it to evict pending state when hostile
// traffic opens more transfers than the pipeline will hold. A message
// view obtained from FeedView is invalidated by Reset.
func (r *Reassembler) Reset() { r.abort() }

// abort ends any transfer — in flight or completed-and-pending — and is
// the single point that returns the pooled scratch buffer.
func (r *Reassembler) abort() {
	if r.buf != nil {
		colstore.PutBuf(r.buf)
		r.buf = nil
	}
	r.expected = 0
	r.nextSeq = 0
	r.lastSeq = 0
	r.haveLast = false
	r.inFlight = false
}

// Reason maps a reassembly error to a short stable label for metrics
// (the telemetry transport-error counter's "reason" dimension). Unknown
// errors report "other"; nil reports "".
func Reason(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBadSequence):
		return "bad-sequence"
	case errors.Is(err, ErrDuplicateFrame):
		return "duplicate-frame"
	case errors.Is(err, ErrUnexpectedFrame):
		return "unexpected-frame"
	case errors.Is(err, ErrTruncatedFrame):
		return "truncated-frame"
	case errors.Is(err, ErrPayloadTooLong):
		return "payload-too-long"
	case errors.Is(err, ErrEmptyPayload):
		return "empty-payload"
	case errors.Is(err, ErrNotFlowControl):
		return "not-flow-control"
	default:
		return "other"
	}
}
