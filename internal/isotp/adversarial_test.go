package isotp_test

import (
	"testing"

	"dpreverser/internal/can"
	"dpreverser/internal/faults"
	"dpreverser/internal/isotp"
)

// attacked runs one clean 40-byte transfer on 0x7E8 through the injector
// with a single attack class saturated.
func attacked(t *testing.T, spec faults.Spec) []can.Frame {
	t.Helper()
	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(i)
	}
	chunks, err := isotp.Segment(payload, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	var in []can.Frame
	for _, d := range chunks {
		in = append(in, can.MustFrame(0x7E8, d))
	}
	return faults.New(spec, 7).Frames(in)
}

// TestAdversarialResync feeds each attack class's output followed by a
// clean transfer: the reassembler must never stall — whatever the attack
// left in flight, the next genuine transfer assembles, and every error
// along the way carries a stable Reason.
func TestAdversarialResync(t *testing.T) {
	cases := []struct {
		name string
		spec faults.Spec
	}{
		{"fc-starve", faults.Spec{FCStarve: 1}},
		{"ff-flood", faults.Spec{FFFlood: 1}},
		{"interleave", faults.Spec{Interleave: 1}},
		{"session-replay", faults.Spec{SessionReplay: 1}},
		{"slow-drip", faults.Spec{SlowDrip: 1}},
	}
	probe := make([]byte, 24)
	for i := range probe {
		probe[i] = byte(0x80 + i)
	}
	cleanChunks, err := isotp.Segment(probe, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r isotp.Reassembler
			feed := func(data []byte) []byte {
				res, err := r.Feed(data)
				if err != nil && isotp.Reason(err) == "" {
					t.Fatalf("unclassified error: %v", err)
				}
				return res.Message
			}
			for _, f := range attacked(t, tc.spec) {
				if msg := feed(f.Payload()); len(msg) > 0xFFF {
					t.Fatalf("message longer than announceable: %d", len(msg))
				}
			}
			var got []byte
			for _, d := range cleanChunks {
				if msg := feed(d); msg != nil {
					got = append([]byte(nil), msg...)
				}
			}
			if len(got) != len(probe) {
				t.Fatalf("clean transfer after %s: assembled %d bytes, want %d", tc.name, len(got), len(probe))
			}
			for i, b := range probe {
				if got[i] != b {
					t.Fatalf("clean transfer after %s: byte %d = %#x, want %#x", tc.name, i, got[i], b)
				}
			}
		})
	}
}

// TestFCStarveVictimSurvives: forged flow control is receiver-to-sender
// traffic, so the reassembler (which models the receiver) ignores it and
// the attacked transfer itself still assembles.
func TestFCStarveVictimSurvives(t *testing.T) {
	var r isotp.Reassembler
	var got []byte
	for _, f := range attacked(t, faults.Spec{FCStarve: 1}) {
		res, err := r.Feed(f.Payload())
		if err != nil {
			t.Fatalf("hostile flow control caused a reassembly error: %v", err)
		}
		if res.Message != nil {
			got = res.Message
		}
	}
	if len(got) != 40 {
		t.Fatalf("victim transfer assembled %d bytes, want 40", len(got))
	}
}

// TestResetEvictsPendingState: Reset mid-transfer drops in-flight state
// without touching counters, and the next transfer assembles from idle.
func TestResetEvictsPendingState(t *testing.T) {
	payload := make([]byte, 40)
	chunks, err := isotp.Segment(payload, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	var r isotp.Reassembler
	if _, err := r.Feed(chunks[0]); err != nil {
		t.Fatal(err)
	}
	if !r.InFlight() {
		t.Fatal("first frame did not open a transfer")
	}
	errsBefore, doneBefore := r.Errors(), r.Completed()
	r.Reset()
	if r.InFlight() {
		t.Fatal("Reset left a transfer in flight")
	}
	if r.Errors() != errsBefore || r.Completed() != doneBefore {
		t.Fatal("Reset disturbed the counters")
	}
	for _, d := range chunks {
		res, err := r.Feed(d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Message != nil && len(res.Message) != 40 {
			t.Fatalf("post-Reset transfer assembled %d bytes", len(res.Message))
		}
	}
	if r.Completed() != doneBefore+1 {
		t.Fatal("transfer after Reset did not complete")
	}
}
