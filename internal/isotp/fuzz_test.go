package isotp_test

import (
	"testing"

	"dpreverser/internal/can"
	"dpreverser/internal/faults"
	"dpreverser/internal/isotp"
)

// FuzzAssemble feeds arbitrary 8-byte frame sequences to the reassembler.
// The contract under fuzzing: never panic, classify every error with a
// stable Reason, and never hand back a message longer than a first frame
// can announce (12-bit length).
func FuzzAssemble(f *testing.F) {
	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(i)
	}
	clean, err := isotp.Segment(payload, 0xCC)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(flatten(clean))
	// Mangled seeds: the fault injector's output is exactly the damage
	// class the resynchronization logic exists for.
	for seed := int64(1); seed <= 3; seed++ {
		var frames []can.Frame
		for _, d := range clean {
			frames = append(frames, can.MustFrame(0x7E8, d))
		}
		inj := faults.New(faults.HeavySpec(), seed)
		var mangled [][]byte
		for _, fr := range inj.Frames(frames) {
			mangled = append(mangled, fr.Payload())
		}
		f.Add(flatten(mangled))
	}
	// Adversarial seeds: each attack class's forged-frame shapes (hostile
	// flow control, oversize first-frame floods, interleaved restarts,
	// byte-identical replays, dripped transfers) seed the corpus directly.
	for seed := int64(1); seed <= 3; seed++ {
		var frames []can.Frame
		for _, d := range clean {
			frames = append(frames, can.MustFrame(0x7E8, d))
		}
		inj := faults.New(faults.AdversarialSpec(), seed)
		var mangled [][]byte
		for _, fr := range inj.Frames(frames) {
			mangled = append(mangled, fr.Payload())
		}
		f.Add(flatten(mangled))
	}
	f.Add([]byte{0x10})             // truncated first frame
	f.Add([]byte{0x21, 0x01, 0x02}) // orphan consecutive frame

	f.Fuzz(func(t *testing.T, data []byte) {
		var r isotp.Reassembler
		for off := 0; off < len(data); off += 8 {
			end := off + 8
			if end > len(data) {
				end = len(data)
			}
			res, err := r.Feed(data[off:end])
			if err != nil {
				if isotp.Reason(err) == "" {
					t.Fatalf("unclassified error: %v", err)
				}
				continue
			}
			if len(res.Message) > 0xFFF {
				t.Fatalf("message longer than a first frame can announce: %d", len(res.Message))
			}
		}
	})
}

func flatten(frames [][]byte) []byte {
	var out []byte
	for _, fr := range frames {
		out = append(out, fr...)
	}
	return out
}
