package isotp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want FrameType
	}{
		{"empty", nil, Invalid},
		{"sf len 1", []byte{0x01, 0xAA}, SingleFrame},
		{"sf len 7", []byte{0x07, 1, 2, 3, 4, 5, 6, 7}, SingleFrame},
		{"sf len 0 invalid", []byte{0x00}, Invalid},
		{"sf len 8 invalid", []byte{0x08, 1, 2, 3, 4, 5, 6, 7}, Invalid},
		{"sf truncated", []byte{0x03, 1}, Invalid},
		{"ff", []byte{0x10, 0x14, 1, 2, 3, 4, 5, 6}, FirstFrame},
		{"ff truncated", []byte{0x10}, Invalid},
		{"cf", []byte{0x21, 1, 2, 3, 4, 5, 6, 7}, ConsecutiveFrame},
		{"fc cts", []byte{0x30, 0x00, 0x00}, FlowControlFrame},
		{"fc truncated", []byte{0x30, 0x00}, Invalid},
		{"reserved pci", []byte{0x40}, Invalid},
		{"reserved pci f", []byte{0xF0}, Invalid},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Classify(c.data); got != c.want {
				t.Fatalf("Classify(% X) = %v, want %v", c.data, got, c.want)
			}
		})
	}
}

func TestFrameTypeString(t *testing.T) {
	pairs := map[FrameType]string{
		SingleFrame: "SF", FirstFrame: "FF", ConsecutiveFrame: "CF",
		FlowControlFrame: "FC", Invalid: "invalid",
	}
	for ft, want := range pairs {
		if got := ft.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ft, got, want)
		}
	}
}

func TestSegmentSingleFrame(t *testing.T) {
	frames, err := Segment([]byte{0x22, 0xF4, 0x0D}, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(frames))
	}
	want := []byte{0x03, 0x22, 0xF4, 0x0D, 0xAA, 0xAA, 0xAA, 0xAA}
	if !bytes.Equal(frames[0], want) {
		t.Fatalf("frame = % X, want % X", frames[0], want)
	}
}

func TestSegmentMultiFrame(t *testing.T) {
	payload := make([]byte, 20)
	for i := range payload {
		payload[i] = byte(i + 1)
	}
	frames, err := Segment(payload, 0x00)
	if err != nil {
		t.Fatal(err)
	}
	// 20 bytes: FF carries 6, then CFs carry 7+7 → 3 frames total.
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3", len(frames))
	}
	if frames[0][0] != 0x10 || frames[0][1] != 20 {
		t.Fatalf("FF header = % X", frames[0][:2])
	}
	if frames[1][0] != 0x21 || frames[2][0] != 0x22 {
		t.Fatalf("CF sequence bytes = %#x, %#x", frames[1][0], frames[2][0])
	}
}

func TestSegmentSequenceWraps(t *testing.T) {
	// 6 + 7*16 = 118 bytes means the 16th CF wraps its sequence to 0x20.
	payload := make([]byte, 6+7*16)
	frames, err := Segment(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := frames[len(frames)-1]
	if last[0] != 0x20 {
		t.Fatalf("16th CF pci = %#x, want 0x20 (sequence wrap)", last[0])
	}
}

func TestSegmentErrors(t *testing.T) {
	if _, err := Segment(nil, 0); !errors.Is(err, ErrEmptyPayload) {
		t.Fatalf("empty: err = %v", err)
	}
	if _, err := Segment(make([]byte, MaxPayload+1), 0); !errors.Is(err, ErrPayloadTooLong) {
		t.Fatalf("too long: err = %v", err)
	}
}

func TestFlowControlRoundTrip(t *testing.T) {
	data := EncodeFlowControl(ContinueToSend, 4, 20)
	fc, err := DecodeFlowControl(data)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Status != ContinueToSend || fc.BlockSize != 4 || fc.STmin != 20*time.Millisecond {
		t.Fatalf("fc = %+v", fc)
	}
}

func TestDecodeFlowControlSTminMicroseconds(t *testing.T) {
	fc, err := DecodeFlowControl([]byte{0x30, 0, 0xF3})
	if err != nil {
		t.Fatal(err)
	}
	if fc.STmin != 300*time.Microsecond {
		t.Fatalf("STmin = %v, want 300µs", fc.STmin)
	}
}

func TestDecodeFlowControlReservedSTmin(t *testing.T) {
	fc, err := DecodeFlowControl([]byte{0x31, 0, 0x80})
	if err != nil {
		t.Fatal(err)
	}
	if fc.Status != Wait {
		t.Fatalf("status = %v, want Wait", fc.Status)
	}
	if fc.STmin != 127*time.Millisecond {
		t.Fatalf("reserved STmin = %v, want 127ms", fc.STmin)
	}
}

func TestDecodeFlowControlRejectsOthers(t *testing.T) {
	if _, err := DecodeFlowControl([]byte{0x02, 1, 2}); !errors.Is(err, ErrNotFlowControl) {
		t.Fatalf("err = %v", err)
	}
}

func TestReassembleSingleFrame(t *testing.T) {
	var r Reassembler
	res, err := r.Feed([]byte{0x02, 0x10, 0x03, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Message, []byte{0x10, 0x03}) {
		t.Fatalf("message = % X", res.Message)
	}
	if r.Completed() != 1 {
		t.Fatalf("Completed = %d", r.Completed())
	}
}

func TestReassembleMultiFrame(t *testing.T) {
	payload := make([]byte, 50)
	for i := range payload {
		payload[i] = byte(200 - i)
	}
	frames, _ := Segment(payload, 0xCC)
	var r Reassembler
	var got []byte
	for i, f := range frames {
		res, err := r.Feed(f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if i == 0 && !res.NeedFlowControl {
			t.Fatal("first frame did not request flow control")
		}
		if res.Message != nil {
			got = res.Message
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled % X, want % X", got, payload)
	}
}

func TestReassembleBadSequence(t *testing.T) {
	var r Reassembler
	_, err := r.Feed([]byte{0x10, 0x14, 1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Feed([]byte{0x23, 7, 8, 9, 10, 11, 12, 13}) // seq 3, want 1
	if !errors.Is(err, ErrBadSequence) {
		t.Fatalf("err = %v, want ErrBadSequence", err)
	}
	if r.InFlight() {
		t.Fatal("reassembler still in flight after sequence error")
	}
	if r.Errors() != 1 {
		t.Fatalf("Errors = %d, want 1", r.Errors())
	}
}

func TestReassembleCFWithoutFF(t *testing.T) {
	var r Reassembler
	_, err := r.Feed([]byte{0x21, 1, 2, 3, 4, 5, 6, 7})
	if !errors.Is(err, ErrUnexpectedFrame) {
		t.Fatalf("err = %v, want ErrUnexpectedFrame", err)
	}
}

func TestReassembleFFWithShortLengthRejected(t *testing.T) {
	var r Reassembler
	_, err := r.Feed([]byte{0x10, 0x05, 1, 2, 3, 4, 5, 6})
	if !errors.Is(err, ErrUnexpectedFrame) {
		t.Fatalf("err = %v, want ErrUnexpectedFrame (FF length must exceed SF capacity)", err)
	}
}

func TestReassembleNewFFAbortsPartial(t *testing.T) {
	var r Reassembler
	if _, err := r.Feed([]byte{0x10, 0x14, 1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	// A fresh FF replaces the stalled transfer.
	payload := make([]byte, 10)
	for i := range payload {
		payload[i] = byte(i)
	}
	frames, _ := Segment(payload, 0)
	var got []byte
	for _, f := range frames {
		res, err := r.Feed(f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Message != nil {
			got = res.Message
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got % X, want % X", got, payload)
	}
}

func TestReassembleIgnoresFlowControl(t *testing.T) {
	var r Reassembler
	res, err := r.Feed(EncodeFlowControl(ContinueToSend, 0, 0))
	if err != nil || res.Message != nil || res.NeedFlowControl {
		t.Fatalf("FC frame not ignored: res=%+v err=%v", res, err)
	}
}

func TestReassembleInvalidFrame(t *testing.T) {
	var r Reassembler
	if _, err := r.Feed([]byte{0x90, 1, 2}); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("err = %v, want ErrTruncatedFrame", err)
	}
}

// Property: Segment → Reassemble is the identity for every payload size in
// range.
func TestSegmentReassembleRoundTripProperty(t *testing.T) {
	f := func(raw []byte, pad byte) bool {
		if len(raw) == 0 || len(raw) > MaxPayload {
			return true // out of protocol range; skip
		}
		frames, err := Segment(raw, pad)
		if err != nil {
			return false
		}
		var r Reassembler
		for _, fr := range frames {
			res, err := r.Feed(fr)
			if err != nil {
				return false
			}
			if res.Message != nil {
				return bytes.Equal(res.Message, raw)
			}
		}
		return false // never completed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every boundary payload size round-trips (exhaustive over the
// interesting sizes: SF/FF boundary, CF boundaries, max).
func TestSegmentReassembleBoundarySizes(t *testing.T) {
	sizes := []int{1, 6, 7, 8, 12, 13, 14, 20, 21, 62, 63, 4094, 4095}
	for _, n := range sizes {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		frames, err := Segment(payload, 0x55)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		var r Reassembler
		var got []byte
		for _, fr := range frames {
			res, err := r.Feed(fr)
			if err != nil {
				t.Fatalf("size %d: %v", n, err)
			}
			if res.Message != nil {
				got = res.Message
			}
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: round trip failed", n)
		}
	}
}
