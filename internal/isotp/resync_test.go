package isotp

import (
	"bytes"
	"testing"

	"dpreverser/internal/telemetry"
)

// fill builds an n-byte payload of a recognisable fill value.
func fill(n int, v byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = v
	}
	return p
}

// transfer segments payload and returns the frame data fields.
func transfer(t *testing.T, payload []byte) [][]byte {
	t.Helper()
	frames, err := Segment(payload, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	return frames
}

// TestReassemblerResync is the fault-model table: each case is a damaged
// frame sequence on one arbitration ID; the reassembler must salvage what
// it can, discard what it cannot, resynchronize on the next first frame,
// and classify every error through the telemetry Reason taxonomy.
func TestReassemblerResync(t *testing.T) {
	payloadA := fill(20, 0x0A)
	payloadB := fill(20, 0x0B)

	cases := []struct {
		name   string
		frames func(t *testing.T) [][]byte
		// want are the payloads expected to survive, in order.
		want [][]byte
		// reasons are the expected telemetry Reason counts.
		reasons map[string]int
	}{
		{
			name: "duplicate consecutive frame is skipped and the transfer salvaged",
			frames: func(t *testing.T) [][]byte {
				fs := transfer(t, payloadA) // FF, CF1, CF2
				return [][]byte{fs[0], fs[1], fs[1], fs[2]}
			},
			want:    [][]byte{payloadA},
			reasons: map[string]int{"duplicate-frame": 1},
		},
		{
			name: "truncated first frame is rejected; next transfer resyncs",
			frames: func(t *testing.T) [][]byte {
				fs := transfer(t, payloadB)
				return append([][]byte{{0x10}}, fs...)
			},
			want:    [][]byte{payloadB},
			reasons: map[string]int{"truncated-frame": 1},
		},
		{
			name: "out-of-order consecutive frame discards the transfer; resync on next first frame",
			frames: func(t *testing.T) [][]byte {
				a := transfer(t, payloadA)
				b := transfer(t, payloadB)
				// CF1 of A is lost: CF2 arrives out of order (discard),
				// CF... after the abort is unexpected, then B assembles.
				return append([][]byte{a[0], a[2]}, b...)
			},
			want:    [][]byte{payloadB},
			reasons: map[string]int{"bad-sequence": 1},
		},
		{
			name: "interleaved sessions on one arbitration ID: new first frame wins",
			frames: func(t *testing.T) [][]byte {
				a := transfer(t, payloadA)
				b := transfer(t, payloadB)
				// A's transfer is cut off by B's first frame; A's stray
				// consecutive frames arrive after B completes.
				return [][]byte{a[0], a[1], b[0], b[1], b[2], a[2]}
			},
			want:    [][]byte{payloadB},
			reasons: map[string]int{"unexpected-frame": 1},
		},
		{
			name: "duplicated first frame restarts the transfer in place",
			frames: func(t *testing.T) [][]byte {
				fs := transfer(t, payloadA)
				return [][]byte{fs[0], fs[0], fs[1], fs[2]}
			},
			want:    [][]byte{payloadA},
			reasons: map[string]int{},
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			errs := reg.CounterVec(telemetry.MetricTransportErrors, "", "transport", "reason")
			var r Reassembler
			var got [][]byte
			for _, f := range c.frames(t) {
				res, err := r.Feed(f)
				if err != nil {
					errs.With("isotp", Reason(err)).Inc()
				}
				if res.Message != nil {
					got = append(got, res.Message)
				}
			}
			if len(got) != len(c.want) {
				t.Fatalf("assembled %d messages, want %d", len(got), len(c.want))
			}
			for i := range got {
				if !bytes.Equal(got[i], c.want[i]) {
					t.Fatalf("message %d = % X, want % X", i, got[i], c.want[i])
				}
			}
			total := 0
			for reason, n := range c.reasons {
				if v := errs.With("isotp", reason).Value(); v != float64(n) {
					t.Errorf("reason %q counter = %v, want %d", reason, v, n)
				}
				total += n
			}
			if r.Errors() < total {
				t.Errorf("Errors() = %d, want at least %d", r.Errors(), total)
			}
		})
	}
}

// TestReassemblerDuplicateDoesNotAbort pins the salvage contract: the
// duplicate error is reported (for metrics) but the transfer stays alive.
func TestReassemblerDuplicateDoesNotAbort(t *testing.T) {
	fs := transfer(t, fill(20, 0x5A))
	var r Reassembler
	if _, err := r.Feed(fs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Feed(fs[1]); err != nil {
		t.Fatal(err)
	}
	_, err := r.Feed(fs[1])
	if Reason(err) != "duplicate-frame" {
		t.Fatalf("err = %v, want duplicate-frame", err)
	}
	if !r.InFlight() {
		t.Fatal("duplicate aborted the transfer")
	}
	res, err := r.Feed(fs[2])
	if err != nil || res.Message == nil {
		t.Fatalf("transfer did not complete after duplicate: res=%+v err=%v", res, err)
	}
}
