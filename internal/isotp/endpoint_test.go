package isotp

import (
	"bytes"
	"testing"

	"dpreverser/internal/can"
)

// newPair wires a tool-side and ECU-side endpoint on one bus, echoing what
// a diagnostic session looks like: tool transmits on reqID, listens on
// respID; the ECU mirrors.
func newPair(t *testing.T, blockSize byte) (*can.Bus, *Endpoint, *Endpoint) {
	t.Helper()
	bus := can.NewBus(nil)
	tool := NewEndpoint(bus, EndpointConfig{TxID: 0x7E0, RxID: 0x7E8, Pad: 0xAA, BlockSize: blockSize})
	ecu := NewEndpoint(bus, EndpointConfig{TxID: 0x7E8, RxID: 0x7E0, Pad: 0xAA, BlockSize: blockSize})
	t.Cleanup(func() { tool.Close(); ecu.Close() })
	return bus, tool, ecu
}

func TestEndpointSingleFrameMessage(t *testing.T) {
	_, tool, ecu := newPair(t, 0)
	var got []byte
	ecu.OnMessage = func(p []byte) { got = append([]byte(nil), p...) }
	if err := tool.Send([]byte{0x22, 0xF4, 0x0D}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0x22, 0xF4, 0x0D}) {
		t.Fatalf("ecu got % X", got)
	}
}

func TestEndpointMultiFrameMessage(t *testing.T) {
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	_, tool, ecu := newPair(t, 0)
	var got []byte
	ecu.OnMessage = func(p []byte) { got = append([]byte(nil), p...) }
	if err := tool.Send(payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("multi-frame transfer corrupted: got %d bytes", len(got))
	}
	if tool.PendingTx() != 0 {
		t.Fatalf("PendingTx = %d after complete transfer", tool.PendingTx())
	}
}

func TestEndpointMultiFrameWithBlockSize(t *testing.T) {
	payload := make([]byte, 200) // FF(6) + 28 CFs
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	bus, tool, ecu := newPair(t, 3) // FC needed every 3 CFs
	var got []byte
	ecu.OnMessage = func(p []byte) { got = append([]byte(nil), p...) }

	snif := can.NewSniffer(bus, nil)
	if err := tool.Send(payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("block-size transfer corrupted")
	}
	// Count FC frames: initial + one per completed block of 3 except the
	// final partial block. 28 CFs → ceil(28/3)=10 blocks → 10 FCs.
	fcCount := 0
	for _, f := range snif.Frames() {
		if f.ID == 0x7E8 && Classify(f.Payload()) == FlowControlFrame {
			fcCount++
		}
	}
	if fcCount != 10 {
		t.Fatalf("saw %d FC frames, want 10", fcCount)
	}
}

func TestEndpointRequestResponseFromHandler(t *testing.T) {
	_, tool, ecu := newPair(t, 0)
	// ECU responds with a long message from inside its handler, the way
	// internal/ecu answers ReadDataByIdentifier.
	response := make([]byte, 40)
	for i := range response {
		response[i] = byte(0x60 + i)
	}
	ecu.OnMessage = func(p []byte) {
		if p[0] == 0x22 {
			if err := ecu.Send(response); err != nil {
				t.Errorf("ecu send: %v", err)
			}
		}
	}
	var got []byte
	tool.OnMessage = func(p []byte) { got = append([]byte(nil), p...) }
	if err := tool.Send([]byte{0x22, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, response) {
		t.Fatalf("tool got %d bytes, want %d", len(got), len(response))
	}
}

func TestEndpointIgnoresOtherIDs(t *testing.T) {
	bus, _, ecu := newPair(t, 0)
	called := false
	ecu.OnMessage = func([]byte) { called = true }
	bus.Send(can.MustFrame(0x123, []byte{0x02, 0x10, 0x03}))
	if called {
		t.Fatal("endpoint processed a frame on a foreign ID")
	}
}

func TestEndpointSendErrors(t *testing.T) {
	_, tool, _ := newPair(t, 0)
	if err := tool.Send(nil); err == nil {
		t.Fatal("Send(nil) succeeded")
	}
	if err := tool.Send(make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized Send succeeded")
	}
}

func TestEndpointBidirectionalInterleaved(t *testing.T) {
	// Two back-to-back exchanges verify reassembler state resets cleanly.
	_, tool, ecu := newPair(t, 0)
	var ecuGot [][]byte
	ecu.OnMessage = func(p []byte) {
		ecuGot = append(ecuGot, append([]byte(nil), p...))
		resp := append([]byte{0x62}, p...)
		if err := ecu.Send(resp); err != nil {
			t.Errorf("ecu send: %v", err)
		}
	}
	var toolGot [][]byte
	tool.OnMessage = func(p []byte) { toolGot = append(toolGot, append([]byte(nil), p...)) }

	long := make([]byte, 30)
	for i := range long {
		long[i] = byte(i)
	}
	for round := 0; round < 3; round++ {
		if err := tool.Send(long); err != nil {
			t.Fatal(err)
		}
		if err := tool.Send([]byte{0x22, 0xAB}); err != nil {
			t.Fatal(err)
		}
	}
	if len(ecuGot) != 6 || len(toolGot) != 6 {
		t.Fatalf("exchanges: ecu %d, tool %d; want 6, 6", len(ecuGot), len(toolGot))
	}
	if !bytes.Equal(toolGot[0], append([]byte{0x62}, long...)) {
		t.Fatal("first long response corrupted")
	}
}
