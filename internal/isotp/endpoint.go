package isotp

import (
	"fmt"
	"sync"

	"dpreverser/internal/can"
)

// Endpoint binds the ISO-TP codec to a CAN bus for one (txID, rxID)
// address pair: diagnostic tools use (requestID, responseID), ECUs use the
// mirror image. It transmits with the flow-control state machine and
// reassembles inbound traffic, delivering complete messages to OnMessage.
//
// The simulated bus delivers frames synchronously, so an entire multi-frame
// exchange — first frame, flow control, consecutive frames — completes
// within the outermost Send call; the endpoint therefore keeps an explicit
// transmit queue driven by inbound FC frames rather than blocking.
type Endpoint struct {
	bus  *can.Bus
	txID uint32
	rxID uint32
	pad  byte

	// OnMessage receives each fully reassembled inbound payload. It may
	// call Send (ECUs respond from their handler).
	OnMessage func(payload []byte)

	mu sync.Mutex
	rx Reassembler
	// rxSinceFC counts consecutive frames received since the last FC we
	// sent, to honour our announced block size.
	rxSinceFC int
	// tx state: frames not yet sent, and the credit granted by the last FC.
	txQueue [][]byte
	credit  int
	// receiver-side FC parameters announced when we receive a first frame.
	rxBlockSize byte
	rxSTmin     byte

	unsubscribe func()
}

// EndpointConfig configures an Endpoint.
type EndpointConfig struct {
	// TxID is the CAN ID this endpoint transmits on.
	TxID uint32
	// RxID is the CAN ID this endpoint listens on.
	RxID uint32
	// Pad fills unused frame bytes (visible on the wire only).
	Pad byte
	// BlockSize is announced in our flow-control frames; 0 = unlimited.
	BlockSize byte
	// STminRaw is the raw STmin byte announced in our flow-control frames.
	STminRaw byte
}

// NewEndpoint attaches an endpoint to the bus. Callers must set OnMessage
// before traffic arrives if they expect inbound messages.
func NewEndpoint(bus *can.Bus, cfg EndpointConfig) *Endpoint {
	e := &Endpoint{
		bus:         bus,
		txID:        cfg.TxID,
		rxID:        cfg.RxID,
		pad:         cfg.Pad,
		rxBlockSize: cfg.BlockSize,
		rxSTmin:     cfg.STminRaw,
	}
	e.unsubscribe = bus.Subscribe(e.handleFrame)
	return e
}

// Close detaches the endpoint from the bus.
func (e *Endpoint) Close() {
	if e.unsubscribe != nil {
		e.unsubscribe()
		e.unsubscribe = nil
	}
}

// Send transmits payload as one ISO-TP message. Single-frame payloads go
// out immediately; longer payloads send the first frame and then proceed
// under flow control as FC frames arrive.
func (e *Endpoint) Send(payload []byte) error {
	frames, err := Segment(payload, e.pad)
	if err != nil {
		return fmt.Errorf("isotp endpoint send: %w", err)
	}
	e.mu.Lock()
	if len(frames) == 1 {
		e.mu.Unlock()
		e.transmit(frames[0])
		return nil
	}
	e.txQueue = append([][]byte{}, frames[1:]...)
	e.credit = 0
	e.mu.Unlock()
	e.transmit(frames[0])
	return nil
}

func (e *Endpoint) transmit(data []byte) {
	f, err := can.NewFrame(e.txID, data)
	if err != nil {
		// Segment always produces 8-byte fields; reaching here is a bug.
		panic(fmt.Sprintf("isotp: internal frame build failed: %v", err))
	}
	e.bus.Send(f)
}

func (e *Endpoint) handleFrame(f can.Frame) {
	if f.ID != e.rxID {
		return
	}
	data := f.Payload()
	if Classify(data) == FlowControlFrame {
		e.handleFlowControl(data)
		return
	}
	e.mu.Lock()
	wasConsec := Classify(data) == ConsecutiveFrame
	res, err := e.rx.Feed(data)
	var sendBlockFC bool
	if err == nil {
		if res.NeedFlowControl {
			e.rxSinceFC = 0
		} else if wasConsec && e.rx.InFlight() && e.rxBlockSize != 0 {
			e.rxSinceFC++
			if e.rxSinceFC >= int(e.rxBlockSize) {
				e.rxSinceFC = 0
				sendBlockFC = true
			}
		}
	}
	e.mu.Unlock()
	if err != nil {
		return // malformed inbound traffic is dropped, like real stacks
	}
	if res.NeedFlowControl || sendBlockFC {
		e.transmit(EncodeFlowControl(ContinueToSend, e.rxBlockSize, e.rxSTmin))
	}
	if res.Message != nil && e.OnMessage != nil {
		e.OnMessage(res.Message)
	}
}

func (e *Endpoint) handleFlowControl(data []byte) {
	fc, err := DecodeFlowControl(data)
	if err != nil || fc.Status != ContinueToSend {
		return
	}
	for {
		e.mu.Lock()
		if len(e.txQueue) == 0 {
			e.mu.Unlock()
			return
		}
		if fc.BlockSize != 0 && e.credit >= int(fc.BlockSize) {
			// Block exhausted; wait for the next FC (which resets credit).
			e.credit = 0
			e.mu.Unlock()
			return
		}
		next := e.txQueue[0]
		e.txQueue = e.txQueue[1:]
		e.credit++
		e.mu.Unlock()
		e.transmit(next)
	}
}

// PendingTx reports how many consecutive frames are still queued.
func (e *Endpoint) PendingTx() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.txQueue)
}
