package vehicle

import (
	"errors"
	"fmt"

	"dpreverser/internal/bmwtp"
	"dpreverser/internal/isotp"
	"dpreverser/internal/obd"
	"dpreverser/internal/vwtp"
)

// Client is a tool-side connection to one ECU: synchronous request /
// response over whatever transport the car uses. The simulated diagnostic
// tools hold one Client per ECU they talk to.
type Client interface {
	// Request sends one application-layer request and returns the
	// response payload.
	Request(req []byte) ([]byte, error)
	// Close releases the transport binding.
	Close()
}

// ErrNoResponse reports that the ECU did not answer (wrong address, closed
// vehicle, or the request never completed).
var ErrNoResponse = errors.New("vehicle: no response from ECU")

// Connect opens a tool-side client to the ECU behind binding b.
func Connect(v *Vehicle, b ECUBinding) (Client, error) {
	switch v.Profile.Transport {
	case ISOTP:
		return newEndpointClient(func(onMsg func([]byte)) (sender, func()) {
			ep := isotp.NewEndpoint(v.Bus, isotp.EndpointConfig{
				TxID: b.ReqID, RxID: b.RespID, Pad: 0xCC,
			})
			ep.OnMessage = onMsg
			return ep, ep.Close
		}), nil
	case BMWExt:
		return newEndpointClient(func(onMsg func([]byte)) (sender, func()) {
			ep := bmwtp.NewEndpoint(v.Bus, bmwtp.EndpointConfig{
				TxID: 0x6F1, RxID: b.RespID, TxAddr: b.Addr, RxAddr: 0xF1,
			})
			ep.OnMessage = onMsg
			return ep, ep.Close
		}), nil
	case VWTP:
		ch, err := vwtp.Dial(v.Bus, b.Addr)
		if err != nil {
			return nil, fmt.Errorf("vehicle connect: %w", err)
		}
		c := &endpointClient{send: ch, close: ch.Close}
		ch.OnMessage = c.deliver
		return c, nil
	default:
		return nil, fmt.Errorf("vehicle connect: unknown transport %v", v.Profile.Transport)
	}
}

// ConnectOBD opens a client on the standard OBD-II functional address.
func ConnectOBD(v *Vehicle) Client {
	return newEndpointClient(func(onMsg func([]byte)) (sender, func()) {
		ep := isotp.NewEndpoint(v.Bus, isotp.EndpointConfig{
			TxID: obd.FunctionalRequestID, RxID: obd.FirstResponseID, Pad: 0x55,
		})
		ep.OnMessage = onMsg
		return ep, ep.Close
	})
}

// sender abstracts the transport endpoints' Send method.
type sender interface {
	Send(payload []byte) error
}

type endpointClient struct {
	send  sender
	close func()
	last  []byte
}

func newEndpointClient(build func(onMsg func([]byte)) (sender, func())) *endpointClient {
	c := &endpointClient{}
	c.send, c.close = build(c.deliver)
	return c
}

func (c *endpointClient) deliver(p []byte) {
	c.last = append([]byte(nil), p...)
}

// Request exploits the synchronous simulated bus: the response handler has
// already run by the time Send returns.
func (c *endpointClient) Request(req []byte) ([]byte, error) {
	c.last = nil
	if err := c.send.Send(req); err != nil {
		return nil, err
	}
	if c.last == nil {
		return nil, ErrNoResponse
	}
	return c.last, nil
}

func (c *endpointClient) Close() {
	if c.close != nil {
		c.close()
		c.close = nil
	}
}
