package vehicle

// Protocol selects the diagnostic application layer a car speaks.
type Protocol int

// Protocols.
const (
	UDS Protocol = iota
	KWP2000
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	if p == KWP2000 {
		return "KWP 2000"
	}
	return "UDS"
}

// Transport selects the network/transport layer beneath the diagnostics.
type Transport int

// Transports.
const (
	// ISOTP is ISO 15765-2 normal addressing.
	ISOTP Transport = iota
	// VWTP is VW TP 2.0 (VAG KWP 2000 cars).
	VWTP
	// BMWExt is ISO-TP extended addressing with a leading ECU-address byte
	// (BMW / Mini, §3.2 Step 2).
	BMWExt
)

// String implements fmt.Stringer.
func (t Transport) String() string {
	switch t {
	case VWTP:
		return "VW TP 2.0"
	case BMWExt:
		return "BMW extended addressing"
	default:
		return "ISO 15765-2"
	}
}

// Profile describes one car of the fleet: identity (Table 3), ESV inventory
// (Table 6), and actuator inventory (Table 11).
type Profile struct {
	// Car is the paper's label ("Car A").
	Car string
	// Model is the vehicle model.
	Model string
	// Protocol and Transport select the stack.
	Protocol  Protocol
	Transport Transport
	// Tool names the diagnostic tool the paper used on this car.
	Tool string
	// NumFormulaESVs and NumEnumESVs size the readable inventory
	// (Table 6 columns).
	NumFormulaESVs int
	NumEnumESVs    int
	// NumECRs sizes the controllable inventory (Table 11); 0 when the
	// paper did not run active tests on the car.
	NumECRs int
	// ECRService is 0x2F (UDS IO control) or 0x30 (IO control by local
	// identifier), matching Table 11's Service ID column.
	ECRService byte
	// SecuredIO marks cars whose IO control sits behind UDS security
	// access (the tool unlocks with the vendor's seed-key algorithm
	// before active tests).
	SecuredIO bool
	// Seed drives every per-car random decision (DID assignment, formula
	// constants, signal phases).
	Seed int64
}

// Fleet returns the 18-car fleet of Table 3, with inventories sized to
// Tables 6 and 11.
func Fleet() []Profile {
	return []Profile{
		{Car: "Car A", Model: "Skoda Octavia", Protocol: UDS, Transport: ISOTP,
			Tool: "LAUNCH X431", NumFormulaESVs: 28, NumEnumESVs: 0, NumECRs: 11, ECRService: 0x2F, Seed: 101},
		{Car: "Car B", Model: "Volkswagen Magotan", Protocol: KWP2000, Transport: VWTP,
			Tool: "VCDS", NumFormulaESVs: 8, NumEnumESVs: 0, Seed: 102},
		{Car: "Car C", Model: "Volkswagen Lavida", Protocol: KWP2000, Transport: VWTP,
			Tool: "LAUNCH X431", NumFormulaESVs: 5, NumEnumESVs: 0, Seed: 103},
		{Car: "Car D", Model: "Lexus NX300", Protocol: UDS, Transport: ISOTP,
			Tool: "Techstream", NumFormulaESVs: 12, NumEnumESVs: 5, NumECRs: 5, ECRService: 0x30, Seed: 104},
		{Car: "Car E", Model: "Mini Cooper R56", Protocol: UDS, Transport: BMWExt,
			Tool: "AUTEL 919", NumFormulaESVs: 5, NumEnumESVs: 4, NumECRs: 3, ECRService: 0x30, Seed: 105},
		{Car: "Car F", Model: "Mini Cooper R59", Protocol: UDS, Transport: BMWExt,
			Tool: "AUTEL 919", NumFormulaESVs: 8, NumEnumESVs: 5, NumECRs: 5, ECRService: 0x30, Seed: 106},
		{Car: "Car G", Model: "BMW i3", Protocol: UDS, Transport: BMWExt,
			Tool: "AUTEL 919", NumFormulaESVs: 5, NumEnumESVs: 22, Seed: 107},
		{Car: "Car H", Model: "RongWei MARVEL X", Protocol: UDS, Transport: ISOTP,
			Tool: "AUTEL 919", NumFormulaESVs: 5, NumEnumESVs: 13, NumECRs: 6, ECRService: 0x2F,
			SecuredIO: true, Seed: 108},
		{Car: "Car I", Model: "Changan Eado", Protocol: UDS, Transport: ISOTP,
			Tool: "AUTEL 919", NumFormulaESVs: 11, NumEnumESVs: 0, NumECRs: 10, ECRService: 0x2F, Seed: 109},
		{Car: "Car J", Model: "BMW 532Li", Protocol: UDS, Transport: BMWExt,
			Tool: "AUTEL 919", NumFormulaESVs: 20, NumEnumESVs: 20, NumECRs: 27, ECRService: 0x30, Seed: 110},
		{Car: "Car K", Model: "Volkswagen Passat", Protocol: KWP2000, Transport: VWTP,
			Tool: "AUTEL 919", NumFormulaESVs: 41, NumEnumESVs: 0, Seed: 111},
		{Car: "Car L", Model: "Toyota Corolla", Protocol: UDS, Transport: ISOTP,
			Tool: "AUTEL 919", NumFormulaESVs: 29, NumEnumESVs: 20, Seed: 112},
		{Car: "Car M", Model: "Peugeot 308", Protocol: UDS, Transport: ISOTP,
			Tool: "AUTEL 919", NumFormulaESVs: 4, NumEnumESVs: 14, Seed: 113},
		{Car: "Car N", Model: "Kia K2 (UC)", Protocol: UDS, Transport: ISOTP,
			Tool: "AUTEL 919", NumFormulaESVs: 26, NumEnumESVs: 19, NumECRs: 21, ECRService: 0x2F, Seed: 114},
		{Car: "Car O", Model: "Ford Kuga", Protocol: UDS, Transport: ISOTP,
			Tool: "AUTEL 919", NumFormulaESVs: 18, NumEnumESVs: 9, NumECRs: 4, ECRService: 0x2F, Seed: 115},
		{Car: "Car P", Model: "Honda Accord", Protocol: UDS, Transport: ISOTP,
			Tool: "AUTEL 919", NumFormulaESVs: 7, NumEnumESVs: 6, Seed: 116},
		{Car: "Car Q", Model: "Nissan Teana", Protocol: UDS, Transport: ISOTP,
			Tool: "AUTEL 919", NumFormulaESVs: 18, NumEnumESVs: 17, NumECRs: 32, ECRService: 0x30, Seed: 117},
		{Car: "Car R", Model: "Audi A4L", Protocol: UDS, Transport: ISOTP,
			Tool: "AUTEL 919", NumFormulaESVs: 40, NumEnumESVs: 2, Seed: 118},
	}
}

// ProfileByCar finds a fleet profile by its paper label.
func ProfileByCar(car string) (Profile, bool) {
	for _, p := range Fleet() {
		if p.Car == car {
			return p, true
		}
	}
	return Profile{}, false
}

// ecuNames is the pool of ECU identities ESVs are spread across.
var ecuNames = []string{
	"Engine", "Transmission", "ABS", "Body Control", "Instrument Cluster",
	"Steering", "Airbag", "Climate",
}
