// Package vehicle assembles complete simulated vehicles: per-car ECU maps
// with manufacturer-proprietary DID / local-identifier tables, formula
// encodings, enum ESVs, and controllable actuators, wired to a CAN bus
// through the transport each manufacturer uses (ISO 15765-2, VW TP 2.0, or
// the BMW extended-addressing variant).
//
// The 18-car fleet mirrors the paper's Table 3; per-car ESV and ECR
// inventories are sized to Tables 6 and 11. Individual DID assignments and
// formula parameters are generated deterministically per car — the
// manufacturers' real tables are proprietary (that is the paper's point),
// so each simulated manufacturer gets its own arbitrary-but-fixed
// assignment, which is exactly the property the reverse-engineering
// pipeline must cope with.
package vehicle

import (
	"fmt"
	"math/rand"
	"time"

	"dpreverser/internal/ecu"
	"dpreverser/internal/signal"
)

// udsArchetype describes one kind of readable quantity a generated UDS DID
// can expose.
type udsArchetype struct {
	name string
	unit string
	// mkSignal builds the live signal for a seed.
	mkSignal func(seed int64) signal.Signal
	// mkCodec builds the proprietary encoding; rng lets each car perturb
	// its formula constants (different manufacturers, different scales).
	mkCodec  func(rng *rand.Rand) ecu.Codec
	min, max float64
}

// udsFormulaArchetypes is the pool of formula-bearing UDS quantities.
// Mostly affine (as on real cars), with two nonlinear entries that separate
// GP from the linear baseline (§4.4).
var udsFormulaArchetypes = []udsArchetype{
	{
		name: "Engine speed", unit: "rpm",
		mkSignal: signal.EngineRPM,
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			return ecu.AffineCodec(2, 0.25, 0)
		},
		min: 0, max: 8000,
	},
	{
		name: "Vehicle speed", unit: "km/h",
		mkSignal: signal.VehicleSpeed,
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			return ecu.AffineCodec(1, 1, 0)
		},
		min: 0, max: 255,
	},
	{
		name: "Coolant temperature", unit: "°C",
		mkSignal: signal.CoolantTemp,
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			// Manufacturers vary scale/offset: 1X-40, 0.5X, 0.1X-40 ...
			scales := []struct{ s, o float64 }{{1, -40}, {0.5, 0}, {0.1, -40}, {0.75, -48}}
			p := scales[rng.Intn(len(scales))]
			return ecu.AffineCodec(1, p.s, p.o)
		},
		min: -48, max: 215,
	},
	{
		name: "Throttle position", unit: "%",
		mkSignal: signal.ThrottlePosition,
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			return ecu.AffineCodec(1, 100.0/255, 0)
		},
		min: 0, max: 100,
	},
	{
		name: "Battery voltage", unit: "V",
		mkSignal: signal.BatteryVoltage,
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			return ecu.AffineCodec(1, 0.1, 0)
		},
		min: 0, max: 25.5,
	},
	{
		name: "Fuel level", unit: "%",
		mkSignal: signal.FuelLevel,
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			return ecu.AffineCodec(1, 0.392, 0)
		},
		min: 0, max: 100,
	},
	{
		name: "Manifold pressure", unit: "kPa",
		mkSignal: signal.ManifoldPressure,
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			return ecu.AffineCodec(1, 1, 0)
		},
		min: 0, max: 255,
	},
	{
		name: "Oil temperature", unit: "°C",
		mkSignal: signal.OilTemperature,
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			return ecu.AffineCodec(1, 1, -40)
		},
		min: -40, max: 215,
	},
	{
		name: "Brake pressure", unit: "bar",
		mkSignal: signal.BrakePressure,
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			return ecu.AffineCodec(2, 0.01, 0)
		},
		min: 0, max: 655,
	},
	{
		name: "Accelerator position", unit: "%",
		mkSignal: signal.AcceleratorPosition,
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			return ecu.AffineCodec(1, 0.4, 0)
		},
		min: 0, max: 102,
	},
	{
		name: "Fuel injection quantity", unit: "mm³/st",
		mkSignal: signal.FuelInjectionQuantity,
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			return ecu.AffineCodec(2, 0.01, 0)
		},
		min: 0, max: 655,
	},
	{
		name: "Boost pressure", unit: "kPa",
		mkSignal: signal.ManifoldPressure,
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			// Nonlinear manufacturer-specific sensor linearisation.
			return ecu.QuadraticCodec(1, 0.0017)
		},
		min: 0, max: 110,
	},
	{
		name: "Air mass flow", unit: "g/s",
		mkSignal: func(seed int64) signal.Signal {
			return signal.NewRandomWalk(seed, 20, 3, 2, 180, 200*time.Millisecond)
		},
		mkCodec: func(rng *rand.Rand) ecu.Codec {
			return ecu.SqrtCodec(2, 0.75)
		},
		min: 0, max: 192,
	},
}

// udsEnumArchetypes is the pool of no-formula (state) quantities.
var udsEnumArchetypes = []udsArchetype{
	{name: "Door state", unit: "", mkSignal: func(int64) signal.Signal { return signal.DoorState() },
		mkCodec: func(*rand.Rand) ecu.Codec { return ecu.EnumCodec(1) }, min: 0, max: 1},
	{name: "Gear position", unit: "", mkSignal: func(int64) signal.Signal { return signal.GearPosition() },
		mkCodec: func(*rand.Rand) ecu.Codec { return ecu.EnumCodec(1) }, min: 0, max: 3},
	{name: "Lamp state", unit: "", mkSignal: func(int64) signal.Signal { return signal.LampState() },
		mkCodec: func(*rand.Rand) ecu.Codec { return ecu.EnumCodec(1) }, min: 0, max: 1},
	{name: "Central lock status", unit: "", mkSignal: func(int64) signal.Signal {
		return signal.Switched{States: []float64{0, 1, 1, 0}, Dwell: 6 * time.Second}
	}, mkCodec: func(*rand.Rand) ecu.Codec { return ecu.EnumCodec(1) }, min: 0, max: 1},
	{name: "Wiper state", unit: "", mkSignal: func(int64) signal.Signal {
		return signal.Switched{States: []float64{0, 1, 2, 0}, Dwell: 5 * time.Second}
	}, mkCodec: func(*rand.Rand) ecu.Codec { return ecu.EnumCodec(1) }, min: 0, max: 2},
	{name: "Window position", unit: "", mkSignal: func(int64) signal.Signal {
		return signal.Switched{States: []float64{0, 2, 5, 3}, Dwell: 7 * time.Second}
	}, mkCodec: func(*rand.Rand) ecu.Codec { return ecu.EnumCodec(1) }, min: 0, max: 5},
}

// kwpArchetype describes a formula-bearing KWP ESV.
type kwpArchetype struct {
	name     string
	unit     string
	fType    byte
	scale    byte
	mkSignal func(seed int64) signal.Signal
	min, max float64
}

// kwpFormulaArchetypes maps physical quantities to KWP formula types, with
// scale constants chosen so the encodable range covers the signal.
var kwpFormulaArchetypes = []kwpArchetype{
	{name: "Engine speed", unit: "rpm", fType: 0x01, scale: 0xF1,
		mkSignal: signal.EngineRPM, min: 0, max: 12000},
	{name: "Vehicle speed", unit: "km/h", fType: 0x07, scale: 0x64,
		mkSignal: signal.VehicleSpeed, min: 0, max: 255},
	{name: "Coolant temperature", unit: "°C", fType: 0x05, scale: 10,
		mkSignal: signal.CoolantTemp, min: -100, max: 155},
	{name: "Battery voltage", unit: "V", fType: 0x06, scale: 60,
		mkSignal: signal.BatteryVoltage, min: 0, max: 15.3},
	{name: "Throttle angle", unit: "%", fType: 0x02, scale: 200,
		mkSignal: signal.ThrottlePosition, min: 0, max: 102},
	{name: "Injection duration", unit: "ms", fType: 0x0F, scale: 25,
		mkSignal: func(seed int64) signal.Signal {
			return signal.NewRandomWalk(seed, 8, 1.5, 1, 25, 200*time.Millisecond)
		}, min: 0, max: 63},
	{name: "Manifold pressure", unit: "mbar", fType: 0x12, scale: 100,
		mkSignal: func(seed int64) signal.Signal {
			return signal.NewRandomWalk(seed, 350, 40, 150, 1020, 200*time.Millisecond)
		}, min: 0, max: 1020},
	{name: "Lambda factor", unit: "%", fType: 0x14, scale: 100,
		mkSignal: func(seed int64) signal.Signal {
			return signal.Sum{
				signal.Sine{Amplitude: 18, Period: 8 * time.Second},
				signal.NewRandomWalk(seed, 0, 2, -8, 8, 300*time.Millisecond),
			}
		}, min: -100, max: 99},
	{name: "Duty cycle", unit: "%", fType: 0x17, scale: 100,
		mkSignal: func(seed int64) signal.Signal {
			return signal.NewRandomWalk(seed, 40, 4, 5, 95, 250*time.Millisecond)
		}, min: 0, max: 99.7},
	{name: "Torque assistance", unit: "N·m", fType: 0x24, scale: 0,
		mkSignal: signal.TorqueAssistance, min: -0.255, max: 0.255},
	{name: "Lateral acceleration", unit: "m/s²", fType: 0x25, scale: 0,
		mkSignal: signal.LateralAcceleration, min: -1.28, max: 1.28},
	{name: "Air mass flow", unit: "g/s", fType: 0x31, scale: 40,
		mkSignal: func(seed int64) signal.Signal {
			return signal.NewRandomWalk(seed, 20, 3, 2, 180, 200*time.Millisecond)
		}, min: 0, max: 255 * 40.0 / 40},
	{name: "Power output", unit: "kW", fType: 0x22, scale: 80,
		mkSignal: func(seed int64) signal.Signal {
			return signal.Sum{
				signal.Sine{Amplitude: 55, Period: 10 * time.Second},
				signal.NewRandomWalk(seed, 0, 5, -30, 30, 300*time.Millisecond),
			}
		}, min: -102.4, max: 101.6},
	{name: "Rail pressure", unit: "bar", fType: 0x35, scale: 200,
		mkSignal: func(seed int64) signal.Signal {
			return signal.NewRandomWalk(seed, 0.02, 0.003, 0.001, 0.05, 300*time.Millisecond)
		}, min: 0, max: 0.051},
}

// kwpEnumArchetypes are KWP state/bitfield ESVs (formula types 0x10/0x11).
var kwpEnumArchetypes = []kwpArchetype{
	{name: "Door state", unit: "", fType: 0x10, scale: 0,
		mkSignal: func(int64) signal.Signal { return signal.DoorState() }, min: 0, max: 1},
	{name: "Gear position", unit: "", fType: 0x11, scale: 0,
		mkSignal: func(int64) signal.Signal { return signal.GearPosition() }, min: 0, max: 3},
	{name: "Lamp state", unit: "", fType: 0x10, scale: 0,
		mkSignal: func(int64) signal.Signal { return signal.LampState() }, min: 0, max: 1},
}

// actuatorNames is the pool of controllable components (paper Tables 11 and
// 13). Cars needing more than the pool size get indexed variants.
var actuatorNames = []string{
	"Fog light left", "Fog light right", "Turn light", "High beam",
	"Low beam", "Wiper", "Door lock", "Trunk lock", "Horn",
	"Fuel pump", "Radiator fan", "Dashboard lamps", "Displayed speed",
	"Displayed engine speed", "Window lift", "Seat heater",
}

// archName derives an indexed display name when a pool wraps around:
// "Engine speed", "Engine speed #2", ...
func archName(base string, round int) string {
	if round == 0 {
		return base
	}
	return fmt.Sprintf("%s #%d", base, round+1)
}
