package vehicle

import (
	"testing"
	"time"

	"dpreverser/internal/isotp"
	"dpreverser/internal/kwp"
	"dpreverser/internal/obd"
	"dpreverser/internal/sim"
	"dpreverser/internal/uds"
	"dpreverser/internal/vwtp"
)

func TestFleetMatchesPaperTables(t *testing.T) {
	fleet := Fleet()
	if len(fleet) != 18 {
		t.Fatalf("fleet size = %d, want 18 (Table 3)", len(fleet))
	}
	totalFormula, totalEnum, totalECR := 0, 0, 0
	kwpCars := 0
	for _, p := range fleet {
		totalFormula += p.NumFormulaESVs
		totalEnum += p.NumEnumESVs
		totalECR += p.NumECRs
		if p.Protocol == KWP2000 {
			kwpCars++
			if p.Transport != VWTP {
				t.Errorf("%s: KWP car not on VW TP 2.0", p.Car)
			}
		}
		if p.NumECRs > 0 && p.ECRService != 0x2F && p.ECRService != 0x30 {
			t.Errorf("%s: ECR service %#x", p.Car, p.ECRService)
		}
	}
	if totalFormula != 290 {
		t.Errorf("total formula ESVs = %d, want 290 (Table 6)", totalFormula)
	}
	if totalEnum != 156 {
		t.Errorf("total enum ESVs = %d, want 156 (Table 6)", totalEnum)
	}
	if totalECR != 124 {
		t.Errorf("total ECRs = %d, want 124 (Table 11)", totalECR)
	}
	if kwpCars != 3 {
		t.Errorf("KWP cars = %d, want 3 (B, C, K)", kwpCars)
	}
	ecrCars := 0
	for _, p := range fleet {
		if p.NumECRs > 0 {
			ecrCars++
		}
	}
	if ecrCars != 10 {
		t.Errorf("cars with ECRs = %d, want 10 (Table 11)", ecrCars)
	}
}

func TestProfileByCar(t *testing.T) {
	p, ok := ProfileByCar("Car K")
	if !ok || p.Model != "Volkswagen Passat" {
		t.Fatalf("Car K = %+v, %v", p, ok)
	}
	if _, ok := ProfileByCar("Car Z"); ok {
		t.Fatal("unknown car found")
	}
}

func TestBuildInventoryCounts(t *testing.T) {
	for _, p := range Fleet() {
		p := p
		t.Run(p.Car, func(t *testing.T) {
			v := Build(p, nil)
			defer v.Close()
			formula, enum, acts := 0, 0, 0
			for _, e := range v.ECUs() {
				for _, did := range e.DIDs() {
					spec, _ := e.DIDSpecFor(did)
					if spec.Enum {
						enum++
					} else {
						formula++
					}
				}
				for _, id := range e.Locals() {
					ls, _ := e.LocalSpecFor(id)
					for _, es := range ls.ESVs {
						if es.Enum {
							enum++
						} else {
							formula++
						}
					}
				}
				acts += len(e.Actuators())
			}
			if formula != p.NumFormulaESVs {
				t.Errorf("formula ESVs = %d, want %d", formula, p.NumFormulaESVs)
			}
			if enum != p.NumEnumESVs {
				t.Errorf("enum ESVs = %d, want %d", enum, p.NumEnumESVs)
			}
			if acts != p.NumECRs {
				t.Errorf("actuators = %d, want %d", acts, p.NumECRs)
			}
		})
	}
}

func TestBuildDeterministic(t *testing.T) {
	p, _ := ProfileByCar("Car A")
	v1 := Build(p, nil)
	defer v1.Close()
	v2 := Build(p, nil)
	defer v2.Close()
	e1, e2 := v1.ECUs()[0], v2.ECUs()[0]
	d1, d2 := e1.DIDs(), e2.DIDs()
	if len(d1) != len(d2) {
		t.Fatalf("DID counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("DID %d differs: %#x vs %#x", i, d1[i], d2[i])
		}
	}
}

func TestUniqueDIDsPerECU(t *testing.T) {
	for _, p := range Fleet() {
		if p.Protocol != UDS {
			continue
		}
		v := Build(p, nil)
		for _, e := range v.ECUs() {
			seen := map[uint16]bool{}
			for _, did := range e.DIDs() {
				if seen[did] {
					t.Fatalf("%s %s: duplicate DID %#04x", p.Car, e.Name, did)
				}
				seen[did] = true
			}
		}
		v.Close()
	}
}

func TestISOTPVehicleEndToEnd(t *testing.T) {
	p, _ := ProfileByCar("Car A") // Skoda, UDS over ISO-TP
	clock := sim.NewClock(0)
	v := Build(p, clock)
	defer v.Close()

	b := v.Bindings()[0]
	tool := isotp.NewEndpoint(v.Bus, isotp.EndpointConfig{
		TxID: b.ReqID, RxID: b.RespID, Pad: 0xCC,
	})
	defer tool.Close()
	var resp []byte
	tool.OnMessage = func(p []byte) { resp = append([]byte(nil), p...) }

	dids := b.ECU.DIDs()
	req, err := uds.BuildRDBIRequest(dids[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Send(req); err != nil {
		t.Fatal(err)
	}
	if !uds.IsPositiveResponse(resp, uds.SIDReadDataByIdentifier) {
		t.Fatalf("response = % X", resp)
	}
	records, err := uds.ParseRDBIResponse(resp, dids[:1])
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := b.ECU.DIDSpecFor(dids[0])
	if len(records[0].Data) != spec.Codec.Width {
		t.Fatalf("data width = %d, want %d", len(records[0].Data), spec.Codec.Width)
	}
}

func TestMultiDIDRequestProducesMultiFrame(t *testing.T) {
	p, _ := ProfileByCar("Car A")
	v := Build(p, nil)
	defer v.Close()

	b := v.Bindings()[0]
	tool := isotp.NewEndpoint(v.Bus, isotp.EndpointConfig{TxID: b.ReqID, RxID: b.RespID})
	defer tool.Close()
	var resp []byte
	tool.OnMessage = func(p []byte) { resp = append([]byte(nil), p...) }

	dids := b.ECU.DIDs()
	if len(dids) < 4 {
		t.Skip("ECU has too few DIDs")
	}
	req, err := uds.BuildRDBIRequest(dids[:4]...)
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Send(req); err != nil {
		t.Fatal(err)
	}
	records, err := uds.ParseRDBIResponse(resp, dids[:4])
	if err != nil {
		t.Fatalf("parse: %v (resp % X)", err, resp)
	}
	if len(records) != 4 {
		t.Fatalf("records = %d", len(records))
	}
}

func TestVWTPVehicleEndToEnd(t *testing.T) {
	p, _ := ProfileByCar("Car B") // Magotan, KWP over VW TP 2.0
	v := Build(p, nil)
	defer v.Close()

	b := v.Bindings()[0]
	ch, err := vwtp.Dial(v.Bus, b.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	var resp []byte
	ch.OnMessage = func(p []byte) { resp = append([]byte(nil), p...) }

	locals := b.ECU.Locals()
	if len(locals) == 0 {
		t.Fatal("KWP ECU has no measuring blocks")
	}
	if err := ch.Send(kwp.BuildReadRequest(locals[0])); err != nil {
		t.Fatal(err)
	}
	id, esvs, err := kwp.ParseReadResponse(resp)
	if err != nil {
		t.Fatalf("parse: %v (resp % X)", err, resp)
	}
	if id != locals[0] || len(esvs) == 0 {
		t.Fatalf("id=%#x esvs=%d", id, len(esvs))
	}
}

func TestBMWVehicleEndToEnd(t *testing.T) {
	p, _ := ProfileByCar("Car G") // BMW i3, extended addressing
	v := Build(p, nil)
	defer v.Close()

	b := v.Bindings()[0]
	client, err := Connect(v, b)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	dids := b.ECU.DIDs()
	req, _ := uds.BuildRDBIRequest(dids[0])
	resp, err := client.Request(req)
	if err != nil {
		t.Fatal(err)
	}
	if !uds.IsPositiveResponse(resp, uds.SIDReadDataByIdentifier) {
		t.Fatalf("response = % X", resp)
	}
}

func TestConnectAllTransports(t *testing.T) {
	// Every car's first ECU must answer a read through the generic Client.
	for _, p := range Fleet() {
		p := p
		t.Run(p.Car, func(t *testing.T) {
			v := Build(p, nil)
			defer v.Close()
			b := v.Bindings()[0]
			client, err := Connect(v, b)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			var req []byte
			if p.Protocol == KWP2000 {
				req = kwp.BuildReadRequest(b.ECU.Locals()[0])
			} else {
				req, _ = uds.BuildRDBIRequest(b.ECU.DIDs()[0])
			}
			resp, err := client.Request(req)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp) == 0 || resp[0] != req[0]+0x40 {
				t.Fatalf("response = % X", resp)
			}
		})
	}
}

func TestConnectOBDClient(t *testing.T) {
	p, _ := ProfileByCar("Car A")
	v := Build(p, nil)
	defer v.Close()
	client := ConnectOBD(v)
	defer client.Close()
	resp, err := client.Request(obd.BuildRequest(obd.PIDEngineRPM))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := obd.ParseResponse(resp); err != nil {
		t.Fatal(err)
	}
}

func TestUDSCarWithService30ECRs(t *testing.T) {
	p, _ := ProfileByCar("Car D") // Lexus: UDS reads, 0x30 IO control
	v := Build(p, nil)
	defer v.Close()

	var target ECUBinding
	found := false
	for _, b := range v.Bindings() {
		if len(b.ECU.Actuators()) > 0 {
			target, found = b, true
			break
		}
	}
	if !found {
		t.Fatal("no ECU with actuators")
	}
	act := target.ECU.Actuators()[0]

	tool := isotp.NewEndpoint(v.Bus, isotp.EndpointConfig{TxID: target.ReqID, RxID: target.RespID})
	defer tool.Close()
	var resp []byte
	tool.OnMessage = func(p []byte) { resp = append([]byte(nil), p...) }

	// Service 0x30 goes to the KWP-style handler even on this UDS car.
	req := append([]byte{0x30, act.LocalID, 0x03}, act.State...)
	if err := tool.Send(req); err != nil {
		t.Fatal(err)
	}
	if !kwp.IsPositiveResponse(resp, kwp.SIDIOControlByLocalIdentifier) {
		t.Fatalf("0x30 control response = % X", resp)
	}
	if !target.ECU.ActuatorActive(act.Name) {
		t.Fatal("actuator not active")
	}
}

func TestOBDResponder(t *testing.T) {
	p, _ := ProfileByCar("Car L")
	clock := sim.NewClock(0)
	v := Build(p, clock)
	defer v.Close()

	tool := isotp.NewEndpoint(v.Bus, isotp.EndpointConfig{
		TxID: obd.FunctionalRequestID, RxID: obd.FirstResponseID,
	})
	defer tool.Close()
	var resp []byte
	tool.OnMessage = func(p []byte) { resp = append([]byte(nil), p...) }

	if err := tool.Send(obd.BuildRequest(obd.PIDVehicleSpeed)); err != nil {
		t.Fatal(err)
	}
	pid, val, err := obd.ParseResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if pid != obd.PIDVehicleSpeed {
		t.Fatalf("pid = %#x", pid)
	}
	sig, _ := v.OBDSignal(obd.PIDVehicleSpeed)
	if want := sig.Value(clock.Now()); val < want-1.5 || val > want+1.5 {
		t.Fatalf("obd speed = %v, signal = %v", val, want)
	}
	// Unknown PID gets a negative response.
	if err := tool.Send(obd.BuildRequest(0xEE)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := uds.ParseNegativeResponse(resp); !ok {
		t.Fatalf("unknown PID response = % X", resp)
	}
}

func TestDashboardTracksClock(t *testing.T) {
	p, _ := ProfileByCar("Car F")
	clock := sim.NewClock(0)
	v := Build(p, clock)
	defer v.Close()
	d1 := v.Dashboard()
	clock.Advance(30 * time.Second)
	d2 := v.Dashboard()
	if d1["Coolant temperature"] >= d2["Coolant temperature"] {
		t.Fatalf("coolant did not warm up: %v -> %v", d1["Coolant temperature"], d2["Coolant temperature"])
	}
	for _, key := range []string{"Vehicle speed", "Engine speed", "Fuel level"} {
		if _, ok := d1[key]; !ok {
			t.Fatalf("dashboard missing %q", key)
		}
	}
}

func TestProtocolAndTransportStrings(t *testing.T) {
	if UDS.String() != "UDS" || KWP2000.String() != "KWP 2000" {
		t.Fatal("protocol strings")
	}
	if ISOTP.String() != "ISO 15765-2" || VWTP.String() != "VW TP 2.0" ||
		BMWExt.String() != "BMW extended addressing" {
		t.Fatal("transport strings")
	}
}
