package vehicle

import (
	"fmt"
	"math/rand"

	"dpreverser/internal/bmwtp"
	"dpreverser/internal/can"
	"dpreverser/internal/ecu"
	"dpreverser/internal/isotp"
	"dpreverser/internal/obd"
	"dpreverser/internal/signal"
	"dpreverser/internal/sim"
	"dpreverser/internal/uds"
	"dpreverser/internal/vwtp"
)

// ECUBinding ties one ECU to its transport addressing so diagnostic tools
// know where to send requests (the tool vendor ships this knowledge; the
// reverse-engineering pipeline does not use it).
type ECUBinding struct {
	ECU *ecu.ECU
	// ReqID / RespID are the CAN IDs for ISO-TP cars.
	ReqID, RespID uint32
	// Addr is the ECU address for VW TP 2.0 and BMW extended addressing.
	Addr byte
}

// Vehicle is one assembled car: a bus, a set of transport-bound ECUs, an
// OBD-II responder, and dashboard signals.
type Vehicle struct {
	Profile Profile
	Clock   *sim.Clock
	Bus     *can.Bus

	bindings []ECUBinding

	// obdSignals back the OBD-II responder and the dashboard.
	obdSignals map[byte]signal.Signal

	closers []func()
}

// Build assembles the vehicle for a profile on a fresh bus. The clock may
// be nil (a new one is created).
func Build(p Profile, clock *sim.Clock) *Vehicle {
	if clock == nil {
		clock = sim.NewClock(0)
	}
	v := &Vehicle{
		Profile: p,
		Clock:   clock,
		Bus:     can.NewBus(clock),
	}
	rng := rand.New(rand.NewSource(p.Seed))
	specs := generateECUs(p, clock, rng)
	v.wireTransports(specs, rng)
	v.wireOBD(p.Seed, sharedSignals(specs))
	return v
}

// sharedSignals collects the proprietary sensors that standard OBD-II PIDs
// (and the dashboard) physically alias: the car has one engine, so the
// engine speed read through a proprietary DID, through OBD-II, and shown
// on the instrument cluster is the same signal — the property the paper's
// Table 7 dashboard validation relies on.
func sharedSignals(cfgs []ecu.Config) map[string]signal.Signal {
	out := map[string]signal.Signal{}
	record := func(name, unit string, s signal.Signal) {
		key := name + "|" + unit
		if _, ok := out[key]; !ok {
			out[key] = s
		}
	}
	for _, cfg := range cfgs {
		for _, d := range cfg.DIDs {
			record(d.Name, d.Unit, d.Signal)
		}
		for _, l := range cfg.Locals {
			for _, e := range l.ESVs {
				record(e.Name, e.Unit, e.Signal)
			}
		}
	}
	return out
}

// Close detaches all transport endpoints from the bus.
func (v *Vehicle) Close() {
	for _, c := range v.closers {
		c()
	}
	v.closers = nil
}

// Bindings lists the transport-bound ECUs.
func (v *Vehicle) Bindings() []ECUBinding {
	return append([]ECUBinding(nil), v.bindings...)
}

// ECUs lists the vehicle's ECUs.
func (v *Vehicle) ECUs() []*ecu.ECU {
	out := make([]*ecu.ECU, len(v.bindings))
	for i, b := range v.bindings {
		out[i] = b.ECU
	}
	return out
}

// Dashboard reports the values a driver would read off the instrument
// cluster right now — the independent ground truth of Table 7.
func (v *Vehicle) Dashboard() map[string]float64 {
	now := v.Clock.Now()
	return map[string]float64{
		"Vehicle speed":       v.obdSignals[obd.PIDVehicleSpeed].Value(now),
		"Engine speed":        v.obdSignals[obd.PIDEngineRPM].Value(now),
		"Coolant temperature": v.obdSignals[obd.PIDCoolantTemp].Value(now),
		"Fuel level":          v.obdSignals[obd.PIDFuelTankLevel].Value(now),
	}
}

// OBDSignal exposes one standard-PID signal (the alignment step and the
// Table 5 experiment read these).
func (v *Vehicle) OBDSignal(pid byte) (signal.Signal, bool) {
	s, ok := v.obdSignals[pid]
	return s, ok
}

// generateECUs builds the per-car proprietary tables: formula ESVs, enum
// ESVs, and actuators, spread over a handful of ECUs.
func generateECUs(p Profile, clock *sim.Clock, rng *rand.Rand) []ecu.Config {
	numECUs := 1 + (p.NumFormulaESVs+p.NumEnumESVs)/12
	if numECUs > len(ecuNames) {
		numECUs = len(ecuNames)
	}
	cfgs := make([]ecu.Config, numECUs)
	for i := range cfgs {
		cfgs[i] = ecu.Config{Name: ecuNames[i], Clock: clock, SecuredIO: p.SecuredIO}
		if p.Protocol == KWP2000 {
			cfgs[i].Identification = fmt.Sprintf("%03dK0 907 %03d %c  %-18s Coding 0%04d",
				1+rng.Intn(8), 100+rng.Intn(899), 'A'+byte(rng.Intn(26)), ecuNames[i], rng.Intn(99999))
		}
		// A realistic car carries a few stored trouble codes.
		for _, code := range dtcPool {
			if rng.Intn(4) == 0 {
				cfgs[i].DTCs = append(cfgs[i].DTCs, uds.DTC{Code: code, Status: uds.DTCStatusConfirmed})
			}
		}
	}

	// Non-overlapping identifier spaces, shuffled per car.
	didAt := func(i int) uint16 { return uint16(0x1000 + 7*i + rng.Intn(5)) }
	enumDIDAt := func(i int) uint16 { return uint16(0xD000 + 5*i + rng.Intn(3)) }

	if p.Protocol == UDS {
		for i := 0; i < p.NumFormulaESVs; i++ {
			arch := udsFormulaArchetypes[i%len(udsFormulaArchetypes)]
			round := i / len(udsFormulaArchetypes)
			spec := ecu.DIDSpec{
				DID:    didAt(i),
				Name:   archName(arch.name, round),
				Unit:   arch.unit,
				Codec:  arch.mkCodec(rng),
				Signal: arch.mkSignal(p.Seed*1000 + int64(i)),
				Min:    arch.min, Max: arch.max,
			}
			c := &cfgs[i%numECUs]
			c.DIDs = append(c.DIDs, spec)
		}
		for i := 0; i < p.NumEnumESVs; i++ {
			arch := udsEnumArchetypes[i%len(udsEnumArchetypes)]
			round := i / len(udsEnumArchetypes)
			spec := ecu.DIDSpec{
				DID:    enumDIDAt(i),
				Name:   archName(arch.name, round),
				Unit:   arch.unit,
				Enum:   true,
				Codec:  arch.mkCodec(rng),
				Signal: arch.mkSignal(p.Seed*2000 + int64(i)),
				Min:    arch.min, Max: arch.max,
			}
			c := &cfgs[i%numECUs]
			c.DIDs = append(c.DIDs, spec)
		}
	} else {
		// KWP: group ESVs into measuring blocks of up to 4.
		type esvGen struct {
			spec ecu.LocalESVSpec
		}
		var all []esvGen
		for i := 0; i < p.NumFormulaESVs; i++ {
			arch := kwpFormulaArchetypes[i%len(kwpFormulaArchetypes)]
			round := i / len(kwpFormulaArchetypes)
			all = append(all, esvGen{ecu.LocalESVSpec{
				Name: archName(arch.name, round), Unit: arch.unit,
				FType: arch.fType, Scale: arch.scale,
				Signal: arch.mkSignal(p.Seed*1000 + int64(i)),
				Min:    arch.min, Max: arch.max,
			}})
		}
		for i := 0; i < p.NumEnumESVs; i++ {
			arch := kwpEnumArchetypes[i%len(kwpEnumArchetypes)]
			round := i / len(kwpEnumArchetypes)
			all = append(all, esvGen{ecu.LocalESVSpec{
				Name: archName(arch.name, round), Unit: arch.unit,
				FType: arch.fType, Scale: arch.scale, Enum: true,
				Signal: arch.mkSignal(p.Seed*2000 + int64(i)),
				Min:    arch.min, Max: arch.max,
			}})
		}
		// Measuring blocks carry up to 14 ESVs: tools read whole blocks, so
		// KWP responses span many TP 2.0 frames — the Table 9 traffic
		// shape (~75% of data frames must wait for successors).
		blockID := byte(1)
		for start := 0; start < len(all); start += 14 {
			end := start + 14
			if end > len(all) {
				end = len(all)
			}
			block := ecu.LocalSpec{LocalID: blockID, Name: fmt.Sprintf("Measuring block %03d", blockID)}
			for _, g := range all[start:end] {
				block.ESVs = append(block.ESVs, g.spec)
			}
			c := &cfgs[int(blockID-1)%numECUs]
			c.Locals = append(c.Locals, block)
			blockID++
		}
	}

	// Actuators (Table 11).
	for i := 0; i < p.NumECRs; i++ {
		name := archName(actuatorNames[i%len(actuatorNames)], i/len(actuatorNames))
		state := []byte{byte(1 + rng.Intn(10)), byte(rng.Intn(2)), 0x00, 0x00}
		spec := ecu.ActuatorSpec{Name: name, State: state}
		if p.ECRService == 0x2F && p.Protocol == UDS {
			spec.DID = uint16(0x0900 + 13*i + rng.Intn(7))
		} else {
			spec.LocalID = byte(0x10 + i)
		}
		c := &cfgs[i%numECUs]
		c.Actuators = append(c.Actuators, spec)
	}
	return cfgs
}

// dtcPool is the trouble-code inventory simulated cars draw from.
var dtcPool = []uint32{0x030100, 0x042000, 0x171300, 0x442A00, 0x844100}

// wireTransports binds each ECU to the bus with the profile's transport.
func (v *Vehicle) wireTransports(cfgs []ecu.Config, rng *rand.Rand) {
	for i, cfg := range cfgs {
		unit := ecu.New(cfg)
		binding := ECUBinding{ECU: unit}
		switch v.Profile.Transport {
		case ISOTP:
			binding.ReqID = uint32(0x700 + 2*i)
			binding.RespID = uint32(0x701 + 2*i)
			ep := isotp.NewEndpoint(v.Bus, isotp.EndpointConfig{
				TxID: binding.RespID, RxID: binding.ReqID, Pad: 0xAA,
			})
			ep.OnMessage = func(req []byte) {
				resp := v.dispatch(unit, req)
				if resp != nil {
					if err := ep.Send(resp); err != nil {
						panic(fmt.Sprintf("vehicle: ecu response send failed: %v", err))
					}
				}
			}
			v.closers = append(v.closers, ep.Close)

		case BMWExt:
			binding.Addr = byte(0x10 + 0x10*i)
			binding.ReqID = 0x6F1
			binding.RespID = uint32(0x600) + uint32(binding.Addr)
			ep := bmwtp.NewEndpoint(v.Bus, bmwtp.EndpointConfig{
				TxID: binding.RespID, RxID: 0x6F1,
				TxAddr: 0xF1, RxAddr: binding.Addr, Pad: 0x00,
			})
			ep.OnMessage = func(req []byte) {
				resp := v.dispatch(unit, req)
				if resp != nil {
					if err := ep.Send(resp); err != nil {
						panic(fmt.Sprintf("vehicle: ecu response send failed: %v", err))
					}
				}
			}
			v.closers = append(v.closers, ep.Close)

		case VWTP:
			binding.Addr = byte(0x01 + i)
			l := vwtp.NewListener(v.Bus, binding.Addr, func(ch *vwtp.Channel) {
				ch.OnMessage = func(req []byte) {
					resp := v.dispatch(unit, req)
					if resp != nil {
						if err := ch.Send(resp); err != nil {
							panic(fmt.Sprintf("vehicle: ecu response send failed: %v", err))
						}
					}
				}
			})
			v.closers = append(v.closers, l.Close)
		}
		v.bindings = append(v.bindings, binding)
	}
}

// dispatch routes a request payload to the right application-layer server.
// KWP cars speak KWP end to end; UDS cars speak UDS, except that the
// manufacturers using IO-control-by-local-identifier (Table 11's service
// 0x30 rows — Lexus, Mini, BMW, Nissan) route that one legacy service to
// the KWP handler, as their real tools do.
func (v *Vehicle) dispatch(unit *ecu.ECU, req []byte) []byte {
	if len(req) == 0 {
		return nil
	}
	if v.Profile.Protocol == KWP2000 {
		return unit.HandleKWP(req)
	}
	if req[0] == 0x30 {
		return unit.HandleKWP(req)
	}
	return unit.HandleUDS(req)
}

// wireOBD attaches the OBD-II mode-01 responder on the standard functional
// request ID. PIDs alias the car's proprietary sensors where the car
// exposes the same quantity; anything the proprietary tables do not cover
// gets its own per-car signal.
func (v *Vehicle) wireOBD(seed int64, shared map[string]signal.Signal) {
	// The unit must match too: a KWP car reporting manifold pressure in
	// mbar cannot back the kPa-denominated PID.
	pick := func(name, unit string, fallback signal.Signal) signal.Signal {
		if s, ok := shared[name+"|"+unit]; ok {
			return s
		}
		return fallback
	}
	v.obdSignals = map[byte]signal.Signal{
		obd.PIDEngineLoad:        signal.ThrottlePosition(seed*31 + 1),
		obd.PIDCoolantTemp:       pick("Coolant temperature", "°C", signal.CoolantTemp(seed*31+2)),
		obd.PIDIntakeManifoldKPa: pick("Manifold pressure", "kPa", signal.ManifoldPressure(seed*31+3)),
		obd.PIDEngineRPM:         pick("Engine speed", "rpm", signal.EngineRPM(seed*31+4)),
		obd.PIDVehicleSpeed:      pick("Vehicle speed", "km/h", signal.VehicleSpeed(seed*31+5)),
		obd.PIDThrottlePosition:  pick("Throttle position", "%", signal.ThrottlePosition(seed*31+6)),
		obd.PIDFuelTankLevel:     pick("Fuel level", "%", signal.FuelLevel(seed*31+7)),
	}
	ep := isotp.NewEndpoint(v.Bus, isotp.EndpointConfig{
		TxID: obd.FirstResponseID, RxID: obd.FunctionalRequestID, Pad: 0x55,
	})
	ep.OnMessage = func(req []byte) {
		pid, err := obd.ParseRequest(req)
		if err != nil {
			return
		}
		sig, ok := v.obdSignals[pid]
		if !ok {
			if e := ep.Send(uds.BuildNegativeResponse(obd.ModeCurrentData, uds.NRCRequestOutOfRange)); e != nil {
				panic(fmt.Sprintf("vehicle: obd negative response failed: %v", e))
			}
			return
		}
		resp, err := obd.BuildResponse(pid, sig.Value(v.Clock.Now()))
		if err != nil {
			return
		}
		if e := ep.Send(resp); e != nil {
			panic(fmt.Sprintf("vehicle: obd response failed: %v", e))
		}
	}
	v.closers = append(v.closers, ep.Close)
}
