package lint

import "testing"

// TestReasonCoverage checks the sentinel rule: in a package declaring an
// exported Reason classifier, every exported Err* sentinel of type error
// must be referenced inside Reason's body. Unexported sentinels,
// non-error Err* names and packages without a classifier are exempt.
func TestReasonCoverage(t *testing.T) {
	files := map[string]string{
		"internal/frob/frob.go": `package frob

import "errors"

var (
	ErrCovered = errors.New("frob: covered")
	ErrOrphan  = errors.New("frob: orphan") // want reasonexhaustive
)

// errInternal is unexported and exempt.
var errInternal = errors.New("frob: internal")

// ErrNames is not an error value and exempt.
var ErrNames = []string{"x"}

// Reason maps a frob error to a stable label; ErrOrphan is deliberately
// missing.
func Reason(err error) string {
	if errors.Is(err, ErrCovered) {
		return "covered"
	}
	return "other"
}
`,
		"internal/noreason/noreason.go": `package noreason

import "errors"

// ErrLoose has no Reason classifier in this package, so no rule applies.
var ErrLoose = errors.New("noreason: loose")
`,
	}
	res := runFixture(t, files, ReasonExhaustive)
	checkMarkers(t, files, res)
}

// TestMetricRegistrations checks the metric-family rules: names must be
// declared constants, each family registers once module-wide (the later
// site is the one flagged), and test files are exempt.
func TestMetricRegistrations(t *testing.T) {
	files := map[string]string{
		"internal/telemetry/registry.go": `package telemetry

// Registry is a minimal stand-in for the real metrics registry; the
// analyzer keys on the package path, type name and method names only.
type Registry struct{}

func (r *Registry) Counter(name string)                   {}
func (r *Registry) GaugeVec(name string, labels ...string) {}
`,
		"internal/metrics/metrics.go": `package metrics

import "dpreverser/internal/telemetry"

const (
	MetricGood = "fixture_good_total"
	MetricDup  = "fixture_dup_total"
)

func register(r *telemetry.Registry) {
	r.Counter(MetricGood)
	r.Counter("fixture_inline_total") // want reasonexhaustive
	r.Counter(MetricDup)
}
`,
		"internal/metrics/metrics_test.go": `package metrics

import "dpreverser/internal/telemetry"

// Test files register throwaway families on throwaway registries and are
// exempt from both rules.
func registerForTest(r *telemetry.Registry) {
	r.Counter("fixture_test_only_total")
}
`,
		"internal/metrics2/metrics2.go": `package metrics2

import "dpreverser/internal/telemetry"

// MetricDup collides with the metrics package's family name.
const MetricDup = "fixture_dup_total"

func register(r *telemetry.Registry) {
	r.GaugeVec(MetricDup, "label") // want reasonexhaustive
}
`,
	}
	res := runFixture(t, files, ReasonExhaustive)
	checkMarkers(t, files, res)
}
