package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// check parses src and runs the Determinism analyzer over it.
func check(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags, err := Run(Determinism, fset, []*ast.File{f})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

func TestDeterminismFlagsWallClock(t *testing.T) {
	diags := check(t, `package p
import "time"
func f() time.Duration {
	start := time.Now()
	return time.Since(start)
}`)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2", diags)
	}
	if diags[0].Pos.Line != 4 || !strings.Contains(diags[0].Message, "time.Now") {
		t.Errorf("first diagnostic = %+v", diags[0])
	}
	if diags[1].Pos.Line != 5 || !strings.Contains(diags[1].Message, "time.Since") {
		t.Errorf("second diagnostic = %+v", diags[1])
	}
}

func TestDeterminismAllowsDeadlinesAndDurations(t *testing.T) {
	diags := check(t, `package p
import "time"
func f() {
	t := time.NewTimer(3 * time.Second)
	defer t.Stop()
	time.Sleep(time.Millisecond)
}`)
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none (only Now/Since are clock reads)", diags)
	}
}

func TestDeterminismFlagsGlobalRandSource(t *testing.T) {
	diags := check(t, `package p
import "math/rand"
func f() int {
	rand.Seed(42)
	return rand.Intn(10)
}`)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2", diags)
	}
}

func TestDeterminismAllowsSeededRand(t *testing.T) {
	diags := check(t, `package p
import "math/rand"
func f(seed int64) *rand.Rand {
	rng := rand.New(rand.NewSource(seed))
	return rng
}`)
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none (seeded idiom)", diags)
	}
}

func TestDeterminismRespectsImportRename(t *testing.T) {
	diags := check(t, `package p
import mrand "math/rand"
func f() int { return mrand.Intn(10) }`)
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want 1", diags)
	}
}

func TestDeterminismSkipsShadowedIdent(t *testing.T) {
	diags := check(t, `package p
type clock struct{}
func (clock) Now() int { return 0 }
func f() int {
	var time clock
	return time.Now()
}`)
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none (local shadows the package)", diags)
	}
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	diags := check(t, `package p
import "time"
func f() (a, b time.Time) {
	a = time.Now() //dplint:allow progress reporting
	//dplint:allow measured quantity
	b = time.Now()
	return
}`)
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want all suppressed", diags)
	}
}

func TestAllowDirectiveIsLineScoped(t *testing.T) {
	diags := check(t, `package p
import "time"
func f() time.Time {
	//dplint:allow only this one
	a := time.Now()
	_ = a
	return time.Now()
}`)
	if len(diags) != 1 || diags[0].Pos.Line != 7 {
		t.Fatalf("diagnostics = %v, want only line 7", diags)
	}
}

// Files importing the telemetry package are held to the stricter rule:
// the injected Clock is the only sanctioned time source, so scheduling
// helpers are flagged too and the message points at telemetry.Clock.
func TestDeterminismStricterForTelemetryUsers(t *testing.T) {
	diags := check(t, `package p
import (
	"time"

	"dpreverser/internal/telemetry"
)
var _ = telemetry.New
func f() {
	_ = time.Now()
	time.Sleep(time.Millisecond)
	<-time.After(time.Second)
	_ = time.NewTicker(time.Second)
}`)
	if len(diags) != 4 {
		t.Fatalf("diagnostics = %v, want 4", diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "telemetry.Clock") {
			t.Errorf("diagnostic %+v does not mention telemetry.Clock", d)
		}
	}
}

// The allow directive keeps suppressing findings under the stricter rule —
// the one real-clock constructor in internal/telemetry relies on it.
func TestDeterminismTelemetryUserAllowDirective(t *testing.T) {
	diags := check(t, `package p
import (
	"time"

	"dpreverser/internal/telemetry"
)
var _ = telemetry.New
func f() time.Time {
	return time.Now() //dplint:allow the one sanctioned real-clock read
}`)
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none", diags)
	}
}

// Non-telemetry files keep the original, laxer rule: scheduling helpers
// stay legal, only Now/Since are clock reads.
func TestDeterminismLaxWithoutTelemetryImport(t *testing.T) {
	diags := check(t, `package p
import "time"
func f() {
	time.Sleep(time.Millisecond)
	_ = time.NewTicker(time.Second)
}`)
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none", diags)
	}
}
