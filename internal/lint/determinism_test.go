package lint

import (
	"strings"
	"testing"
)

// TestDeterminismBasicRules covers the laxer rule applied outside
// telemetry users: only Now/Since are clock reads, the global math/rand
// source is forbidden, seeded generators and shadowed identifiers pass,
// renamed imports are followed through the type checker, and the
// internal/sim substrate is exempt wholesale.
func TestDeterminismBasicRules(t *testing.T) {
	files := map[string]string{
		"internal/pipe/clock.go": `package pipe

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now() // want determinism
	return time.Since(start) // want determinism
}

func schedulingAllowed() {
	tm := time.NewTimer(3 * time.Second)
	defer tm.Stop()
	time.Sleep(time.Millisecond)
}

func globalRand() int {
	rand.Seed(42) // want determinism
	return rand.Intn(10) // want determinism
}

func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
`,
		"internal/pipe/renamed.go": `package pipe

import mrand "math/rand"

func renamed() int { return mrand.Intn(10) } // want determinism
`,
		"internal/pipe/shadow.go": `package pipe

type clock struct{}

func (clock) Now() int { return 0 }

func shadowed() int {
	var time clock
	return time.Now()
}
`,
		"internal/sim/sim.go": `package sim

import "time"

// Exempt: the simulation substrate is the one place wall clocks live.
func WallNow() time.Time { return time.Now() }
`,
	}
	res := runFixture(t, files, Determinism)
	checkMarkers(t, files, res)
}

// TestDeterminismStricterForTelemetryUsers holds files importing the
// telemetry package to the injected-Clock rule: scheduling helpers are
// flagged too, and the message points at telemetry.Clock.
func TestDeterminismStricterForTelemetryUsers(t *testing.T) {
	files := map[string]string{
		"internal/telemetry/telemetry.go": `package telemetry

// New exists so the fixture file below has something to reference; the
// analyzer keys on the import path alone.
func New() {}
`,
		"internal/user/user.go": `package user

import (
	"time"

	"dpreverser/internal/telemetry"
)

var _ = telemetry.New

func f() {
	_ = time.Now() // want determinism
	time.Sleep(time.Millisecond) // want determinism
	<-time.After(time.Second) // want determinism
	_ = time.NewTicker(time.Second) // want determinism
}
`,
	}
	res := runFixture(t, files, Determinism)
	checkMarkers(t, files, res)
	for _, d := range res.Diagnostics {
		if !strings.Contains(d.Message, "telemetry.Clock") {
			t.Errorf("diagnostic %s does not mention telemetry.Clock", d)
		}
	}
}

// TestDeterminismLaxWithoutTelemetryImport pins the negative side of the
// split rule: the same scheduling helpers are legal in files that do not
// consume the telemetry clock.
func TestDeterminismLaxWithoutTelemetryImport(t *testing.T) {
	files := map[string]string{
		"internal/plain/plain.go": `package plain

import "time"

func f() {
	time.Sleep(time.Millisecond)
	_ = time.NewTicker(time.Second)
}
`,
	}
	res := runFixture(t, files, Determinism)
	checkMarkers(t, files, res)
}
