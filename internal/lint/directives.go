package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive is one parsed dplint comment directive.
type Directive struct {
	// Kind is "allow" or "hotpath".
	Kind string `json:"kind"`
	// File is module-relative; Line is where the comment sits.
	File string `json:"file"`
	Line int    `json:"line"`
	// Args carries the analyzer list (allow) or the region name (hotpath).
	Args []string `json:"args"`
	// Reason is the free-text remainder of an allow directive.
	Reason string `json:"reason,omitempty"`

	pos  token.Pos
	used bool
}

// directivePrefix introduces every dplint directive.
const directivePrefix = "dplint:"

// AllowDirective is the suppression directive's full prefix, exported for
// diagnostics that tell the user how to annotate.
const AllowDirective = "dplint:allow"

// parseDirective parses one comment. It returns (nil, "") for ordinary
// comments, a directive for well-formed ones, and an error message for
// comments that sit in directive position but do not parse — including
// near-miss tokens like "dplint:allowed", which must fail loudly instead
// of silently suppressing nothing.
func parseDirective(c *ast.Comment) (*Directive, string) {
	text, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return nil, "" // block comments are never directives
	}
	if !strings.HasPrefix(text, directivePrefix) {
		return nil, ""
	}
	rest := text[len(directivePrefix):]
	kind, rest, _ := strings.Cut(rest, " ")
	fields := strings.Fields(rest)
	switch kind {
	case "allow":
		if len(fields) == 0 {
			return nil, "dplint:allow needs an analyzer name: //dplint:allow <analyzer>[,<analyzer>] [reason]"
		}
		names := strings.Split(fields[0], ",")
		for _, n := range names {
			if n == "" {
				return nil, fmt.Sprintf("dplint:allow has an empty analyzer name in %q", fields[0])
			}
		}
		return &Directive{
			Kind:   "allow",
			Args:   names,
			Reason: strings.Join(fields[1:], " "),
			pos:    c.Pos(),
		}, ""
	case "hotpath":
		if len(fields) != 1 {
			return nil, "dplint:hotpath needs exactly one region name: //dplint:hotpath <region>"
		}
		return &Directive{Kind: "hotpath", Args: fields, pos: c.Pos()}, ""
	default:
		return nil, fmt.Sprintf("unknown dplint directive %q (want dplint:allow or dplint:hotpath)", strings.TrimSpace(kind))
	}
}

// scanDirectives collects every directive in the module, emitting
// malformed-directive diagnostics under the "directives" pseudo-analyzer.
// known guards the allow directives' analyzer names.
func scanDirectives(m *Module, known map[string]bool) (dirs []*Directive, malformed []Diagnostic) {
	report := func(pos token.Pos, format string, args ...any) {
		position := m.Fset.Position(pos)
		malformed = append(malformed, Diagnostic{
			Analyzer: "directives",
			File:     m.relFile(position.Filename),
			Line:     position.Line,
			Col:      position.Column,
			Message:  fmt.Sprintf(format, args...),
			pos:      pos,
		})
	}
	seen := map[string]bool{} // files can appear once per package only, but be safe
	for _, pkg := range m.Packages {
		for i, f := range pkg.Files {
			if seen[pkg.FilePaths[i]] {
				continue
			}
			seen[pkg.FilePaths[i]] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, errMsg := parseDirective(c)
					if errMsg != "" {
						report(c.Pos(), "%s", errMsg)
						continue
					}
					if d == nil {
						continue
					}
					position := m.Fset.Position(d.pos)
					d.File = m.relFile(position.Filename)
					d.Line = position.Line
					if d.Kind == "allow" {
						for _, n := range d.Args {
							if !known[n] {
								report(c.Pos(), "dplint:allow names unknown analyzer %q", n)
							}
						}
					}
					dirs = append(dirs, d)
				}
			}
		}
	}
	return dirs, malformed
}

// allowIndex maps (file, line) to the allow directives sitting there.
type allowIndex map[string]map[int][]*Directive

func buildAllowIndex(dirs []*Directive) allowIndex {
	idx := allowIndex{}
	for _, d := range dirs {
		if d.Kind != "allow" {
			continue
		}
		if idx[d.File] == nil {
			idx[d.File] = map[int][]*Directive{}
		}
		idx[d.File][d.Line] = append(idx[d.File][d.Line], d)
	}
	return idx
}

// suppresses reports whether an allow directive for the diagnostic's
// analyzer sits on any of the candidate lines, marking the directive used.
func (idx allowIndex) suppresses(d Diagnostic, lines []int) bool {
	fileDirs := idx[d.File]
	if fileDirs == nil {
		return false
	}
	hit := false
	for _, line := range lines {
		for _, dir := range fileDirs[line] {
			for _, name := range dir.Args {
				if name == d.Analyzer {
					dir.used = true
					hit = true
				}
			}
		}
	}
	return hit
}

// enclosingStmtLine resolves the start line of the innermost statement
// (or, at package level, declaration spec) containing pos, so a directive
// above a multi-line statement suppresses diagnostics reported deep
// inside it.
func enclosingStmtLine(m *Module, f *ast.File, pos token.Pos) int {
	if pos < f.Pos() || pos > f.End() {
		return 0
	}
	var best ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return n == f // keep walking only from the root on a miss
		}
		switch n.(type) {
		case ast.Stmt, ast.Spec, *ast.FuncDecl, *ast.GenDecl:
			if best == nil || (n.Pos() >= best.Pos() && n.End() <= best.End()) {
				best = n
			}
		}
		return true
	})
	if best == nil {
		return 0
	}
	return m.Fset.Position(best.Pos()).Line
}

// Result is one full run of the suite over a module.
type Result struct {
	// Diagnostics are the unsuppressed findings, sorted by position.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Suppressed are the findings an allow directive absorbed.
	Suppressed []Diagnostic `json:"suppressed,omitempty"`
	// Directives are all parsed directives (for tooling).
	Directives []*Directive `json:"-"`
}

// StaleAllows returns the allow directives that suppressed nothing in
// this run — dead annotations `dplint -audit-allows` refuses. Meaningful
// only when the run included every analyzer the directives name.
func (r *Result) StaleAllows() []*Directive {
	var out []*Directive
	for _, d := range r.Directives {
		if d.Kind == "allow" && !d.used {
			out = append(out, d)
		}
	}
	return out
}

// RunModule applies the analyzers to every package of the module and
// resolves suppression directives.
func RunModule(m *Module, analyzers []*Analyzer) (*Result, error) {
	known := map[string]bool{}
	for _, a := range AllAnalyzers() {
		known[a.Name] = true
	}
	dirs, malformed := scanDirectives(m, known)
	idx := buildAllowIndex(dirs)

	var all []Diagnostic
	for _, pkg := range m.Packages {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Module: m, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
			all = append(all, pass.diags...)
		}
	}

	res := &Result{Directives: dirs}
	fileAST := map[string]*ast.File{}
	for _, pkg := range m.Packages {
		for i, f := range pkg.Files {
			fileAST[pkg.FilePaths[i]] = f
		}
	}
	for _, d := range all {
		lines := []int{d.Line, d.Line - 1}
		if f := fileAST[d.File]; f != nil && d.pos.IsValid() {
			if sl := enclosingStmtLine(m, f, d.pos); sl > 0 && sl != d.Line {
				lines = append(lines, sl, sl-1)
			}
		}
		if idx.suppresses(d, lines) {
			res.Suppressed = append(res.Suppressed, d)
		} else {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	res.Diagnostics = append(res.Diagnostics, malformed...)
	sortDiags(res.Diagnostics)
	sortDiags(res.Suppressed)
	return res, nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
