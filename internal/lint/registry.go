package lint

import (
	"fmt"
	"sort"
	"strings"
)

// AllAnalyzers returns every registered analyzer in stable (name) order.
func AllAnalyzers() []*Analyzer {
	out := []*Analyzer{
		Determinism,
		GoroutineLifecycle,
		LockHold,
		ReasonExhaustive,
		HotAlloc,
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Select resolves the driver's -enable/-disable comma lists against the
// registry: enable empty means "all", disable is subtracted afterwards.
func Select(enable, disable string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range AllAnalyzers() {
		byName[a.Name] = a
	}
	pick := map[string]*Analyzer{}
	if enable == "" {
		for n, a := range byName {
			pick[n] = a
		}
	} else {
		for _, n := range splitList(enable) {
			a, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, analyzerNames())
			}
			pick[n] = a
		}
	}
	for _, n := range splitList(disable) {
		if _, ok := byName[n]; !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, analyzerNames())
		}
		delete(pick, n)
	}
	out := make([]*Analyzer, 0, len(pick))
	for _, a := range AllAnalyzers() {
		if _, ok := pick[a.Name]; ok {
			out = append(out, a)
		}
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func analyzerNames() string {
	var names []string
	for _, a := range AllAnalyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
