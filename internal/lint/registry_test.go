package lint

import (
	"strings"
	"testing"
)

func names(as []*Analyzer) string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return strings.Join(out, ",")
}

func TestSelect(t *testing.T) {
	all := "determinism,goroutinelifecycle,hotalloc,lockhold,reasonexhaustive"
	cases := []struct {
		enable, disable string
		want            string // "" means an error is expected
	}{
		{"", "", all},
		{"lockhold", "", "lockhold"},
		{"determinism, lockhold", "", "determinism,lockhold"}, // spaces tolerated, registry order kept
		{"", "hotalloc", "determinism,goroutinelifecycle,lockhold,reasonexhaustive"},
		{"lockhold,determinism", "lockhold", "determinism"},
		{"nope", "", ""},
		{"", "nope", ""},
	}
	for _, tc := range cases {
		got, err := Select(tc.enable, tc.disable)
		if tc.want == "" {
			if err == nil || !strings.Contains(err.Error(), `unknown analyzer "nope"`) {
				t.Errorf("Select(%q, %q) error = %v, want unknown-analyzer error", tc.enable, tc.disable, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("Select(%q, %q): %v", tc.enable, tc.disable, err)
			continue
		}
		if names(got) != tc.want {
			t.Errorf("Select(%q, %q) = %s, want %s", tc.enable, tc.disable, names(got), tc.want)
		}
	}
}

func TestAllAnalyzersHaveDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range AllAnalyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 5 {
		t.Errorf("registry has %d analyzers, want at least 5", len(seen))
	}
}
