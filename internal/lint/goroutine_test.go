package lint

import "testing"

// TestGoroutineLifecycle exercises every accept rule (WaitGroup pairing,
// context plumbing, completion-channel signal, cross-package body
// resolution, context through an opaque call) and the reject cases each
// rule gates (bare spawn, Done without Add, opaque call without context).
func TestGoroutineLifecycle(t *testing.T) {
	files := map[string]string{
		"internal/spawnee/spawnee.go": `package spawnee

import "sync"

// Work is spawned by the spawn fixture across the package boundary; the
// analyzer must resolve its body through the module-wide function index.
func Work(wg *sync.WaitGroup) {
	defer wg.Done()
}
`,
		"internal/spawn/spawn.go": `package spawn

import (
	"context"
	"sync"

	"dpreverser/internal/spawnee"
)

func leak() {
	go func() { println("x") }() // want goroutinelifecycle
}

func waitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func doneWithoutAdd() {
	var wg sync.WaitGroup
	go func() { // want goroutinelifecycle
		defer wg.Done()
	}()
	wg.Wait()
}

func ctxBody(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func doneChannel() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	return done
}

func sends(ch chan int) {
	go func() { ch <- 1 }()
}

func worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

func namedWorker() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

func crossPackage() {
	var wg sync.WaitGroup
	wg.Add(1)
	go spawnee.Work(&wg)
	wg.Wait()
}

var ext func()

var extCtx func(context.Context)

func opaque(ctx context.Context) {
	go ext() // want goroutinelifecycle
	go extCtx(ctx)
}
`,
	}
	res := runFixture(t, files, GoroutineLifecycle)
	checkMarkers(t, files, res)
}
