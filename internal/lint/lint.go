// Package lint is a dependency-free, type-aware static-analysis suite in
// the shape of golang.org/x/tools/go/analysis, plus this repo's
// analyzers.
//
// The real go/analysis framework would be the natural base, but the repo
// builds with the standard library only, so the subset needed here is
// reimplemented directly: a Module loader that parses and type-checks
// every package with go/parser + go/types (resolving the standard
// library through the source importer), an Analyzer registry with
// per-analyzer enable/disable, positional diagnostics with JSON output,
// and scoped suppression directives.
//
// Two comment directives are recognised, both of which must start the
// comment (standard Go directive position, no space after //):
//
//	//dplint:allow <analyzer>[,<analyzer>...] [reason]
//	    suppress diagnostics from the named analyzers on the same line,
//	    the line below, or the multi-line statement starting on the line
//	    below. The analyzer name is required and matched exactly; a
//	    directive that suppresses nothing is "stale" and fails
//	    `dplint -audit-allows`.
//
//	//dplint:hotpath <region>
//	    mark the function declared on the next line as an
//	    allocation-guarded hot region for `dplint -hotalloc`; see
//	    hotalloc.go.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
)

// Analyzer describes one check, in the style of analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("dplint/<name>") and in
	// //dplint:allow directives.
	Name string
	// Doc is the one-paragraph description shown by the driver's -list.
	Doc string
	// Run inspects the pass's package and reports findings via
	// Pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer, in the style of
// analysis.Pass, with full type information reachable through Pkg and,
// across package boundaries, Module.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Pkg      *Package

	diags []Diagnostic
}

// Fset returns the position table shared by the whole module.
func (p *Pass) Fset() *token.FileSet { return p.Module.Fset }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     p.Module.relFile(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		pos:      pos,
	})
}

// Diagnostic is one finding at a resolved source position. File is
// module-relative with forward slashes.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`

	pos token.Pos
}

// String renders the driver's text format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [dplint/%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// relFile maps an absolute file name under the module root to its
// module-relative forward-slash form.
func (m *Module) relFile(name string) string {
	if rel, err := filepath.Rel(m.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}
