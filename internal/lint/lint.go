// Package lint is a minimal, dependency-free analysis framework in the
// shape of golang.org/x/tools/go/analysis, plus this repo's analyzers.
//
// The real go/analysis framework would be the natural base, but the repo
// builds with the standard library only, so the subset needed here — an
// Analyzer with a Run function over parsed files, positional diagnostics,
// and a suppression directive — is reimplemented on go/ast directly. The
// analyzers are purely syntactic: they inspect the AST without type
// information, which is enough for the determinism rules and keeps the
// driver fast and install-free.
//
// A diagnostic is suppressed by a `//dplint:allow` comment on the same
// line or the line directly above, mirroring //nolint and //lint:ignore.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Analyzer describes one check, in the style of analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("dplint/<name>").
	Name string
	// Doc is the one-paragraph description shown by the driver's -help.
	Doc string
	// Run inspects the pass's files and reports findings via Pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one batch of parsed files through an analyzer, in the
// style of analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File

	diags []Diagnostic
}

// Diagnostic is one finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// AllowDirective is the suppression comment recognised by every analyzer.
const AllowDirective = "dplint:allow"

// Run applies one analyzer to a set of parsed files (which must have been
// parsed with comments) and returns the diagnostics that are not
// suppressed by an AllowDirective on the same or the preceding line.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files}
	if err := a.Run(pass); err != nil {
		return nil, err
	}

	// Collect the lines carrying an allow directive, per file.
	allowed := map[string]map[int]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, AllowDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				if allowed[pos.Filename] == nil {
					allowed[pos.Filename] = map[int]bool{}
				}
				allowed[pos.Filename][pos.Line] = true
			}
		}
	}

	var out []Diagnostic
	for _, d := range pass.diags {
		lines := allowed[d.Pos.Filename]
		if lines[d.Pos.Line] || lines[d.Pos.Line-1] {
			continue
		}
		out = append(out, d)
	}
	return out, nil
}
