package lint

import (
	"go/ast"
	"strconv"
)

// Determinism rejects ambient nondeterminism outside the simulation
// substrate: the repo's experiments must be byte-identical across runs
// and worker counts, so wall-clock reads and the global math/rand source
// are confined to internal/sim (which wraps them behind injectable
// clocks and seeded generators).
//
// Flagged:
//   - time.Now, time.Since
//   - any math/rand package-level function drawing from the global
//     source (rand.Intn, rand.Float64, rand.Perm, rand.Seed, ...)
//
// Files that import dpreverser/internal/telemetry are held to a stricter
// standard: the injected telemetry.Clock is the only sanctioned time
// source there, so on top of Now/Since the analyzer also flags the
// scheduling helpers (time.Sleep, time.After, time.Tick, time.NewTimer,
// time.NewTicker, time.AfterFunc) and tailors the diagnostic to point at
// the Clock. telemetry.NewWallClock is the one annotated real-clock
// constructor; everything downstream must thread the provider's clock.
//
// Allowed:
//   - explicitly seeded generators: rand.New, rand.NewSource, rand.NewZipf
//   - type references (rand.Rand, rand.Source, rand.Source64)
//   - anything carrying a //dplint:allow comment on the same or the
//     preceding line (deliberate wall-clock use, e.g. progress reporting
//     or the Table 8 timing measurement itself)
//
// The check is syntactic: it matches selector expressions whose base is
// the file's import name for "time" or "math/rand". A local identifier
// shadowing an import name is recognised via the parser's object
// resolution and skipped.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/time.Since and global-source math/rand " +
		"outside internal/sim (use the sim clock and seeded *rand.Rand)",
	Run: runDeterminism,
}

// randDeterministic are the math/rand selectors that do not touch the
// global source: seeded constructors and type names.
var randDeterministic = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
}

// timeForbidden are the wall-clock reads the simulation clock replaces.
var timeForbidden = map[string]bool{
	"Now":   true,
	"Since": true,
}

// timeForbiddenTelemetry extends timeForbidden for telemetry users: once a
// file consumes the injected Clock, ambient scheduling helpers are just as
// nondeterministic as direct reads.
var timeForbiddenTelemetry = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// telemetryImportPath marks the files held to the stricter clock rule.
const telemetryImportPath = "dpreverser/internal/telemetry"

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		timeNames, randNames := clockImportNames(f)
		if len(timeNames) == 0 && len(randNames) == 0 {
			continue
		}
		forbidden := timeForbidden
		msg := "%s.%s reads the wall clock; use the internal/sim clock (or annotate //dplint:allow)"
		if importsPath(f, telemetryImportPath) {
			forbidden = timeForbiddenTelemetry
			msg = "%s.%s bypasses the injected telemetry.Clock, the only sanctioned " +
				"time source for telemetry users (or annotate //dplint:allow)"
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Obj != nil { // resolved object: a local, not a package
				return true
			}
			switch {
			case timeNames[id.Name] && forbidden[sel.Sel.Name]:
				pass.Reportf(sel.Pos(), msg, id.Name, sel.Sel.Name)
			case randNames[id.Name] && !randDeterministic[sel.Sel.Name]:
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the global math/rand source; use a seeded rand.New(rand.NewSource(...))",
					id.Name, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// importsPath reports whether the file imports the given package path.
func importsPath(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return true
		}
	}
	return false
}

// clockImportNames returns the identifiers under which a file imports
// "time" and "math/rand" (respecting renames; dot and blank imports are
// ignored — a dot import of these packages would itself be flagged by
// review long before this linter matters).
func clockImportNames(f *ast.File) (timeNames, randNames map[string]bool) {
	timeNames, randNames = map[string]bool{}, map[string]bool{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		switch path {
		case "time":
			if name == "" {
				name = "time"
			}
			timeNames[name] = true
		case "math/rand", "math/rand/v2":
			if name == "" {
				name = "rand"
			}
			randNames[name] = true
		}
	}
	return timeNames, randNames
}
