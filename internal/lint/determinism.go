package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// Determinism rejects ambient nondeterminism outside the simulation
// substrate: the repo's experiments must be byte-identical across runs
// and worker counts, so wall-clock reads and the global math/rand source
// are confined to internal/sim (which wraps them behind injectable
// clocks and seeded generators).
//
// Flagged:
//   - time.Now, time.Since
//   - any math/rand package-level function drawing from the global
//     source (rand.Intn, rand.Float64, rand.Perm, rand.Seed, ...)
//
// Files that import dpreverser/internal/telemetry are held to a stricter
// standard: the injected telemetry.Clock is the only sanctioned time
// source there, so on top of Now/Since the analyzer also flags the
// scheduling helpers (time.Sleep, time.After, time.Tick, time.NewTimer,
// time.NewTicker, time.AfterFunc) and tailors the diagnostic to point at
// the Clock. telemetry.NewWallClock is the one annotated real-clock
// constructor; everything downstream must thread the provider's clock.
//
// Allowed:
//   - explicitly seeded generators: rand.New, rand.NewSource, rand.NewZipf
//   - type references (rand.Rand, rand.Source, rand.Source64)
//   - the internal/sim package itself
//   - anything carrying an allow directive for this analyzer (deliberate
//     wall-clock use, e.g. progress reporting or the Table 8 timing
//     measurement itself)
//
// Package references resolve through the type checker, so renamed
// imports are followed and local identifiers shadowing an import name
// are never confused with the package.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/time.Since and global-source math/rand " +
		"outside internal/sim (use the sim clock and seeded *rand.Rand)",
	Run: runDeterminism,
}

// randDeterministic are the math/rand selectors that do not touch the
// global source: seeded constructors and type names.
var randDeterministic = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
}

// timeForbidden are the wall-clock reads the simulation clock replaces.
var timeForbidden = map[string]bool{
	"Now":   true,
	"Since": true,
}

// timeForbiddenTelemetry extends timeForbidden for telemetry users: once a
// file consumes the injected Clock, ambient scheduling helpers are just as
// nondeterministic as direct reads.
var timeForbiddenTelemetry = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// telemetryImportPath marks the files held to the stricter clock rule.
const telemetryImportPath = "dpreverser/internal/telemetry"

// simPathSuffix exempts the simulation substrate, the one place wall
// clocks and entropy are wrapped.
const simPathSuffix = "internal/sim"

func runDeterminism(pass *Pass) error {
	if p := pass.Pkg.Path; p == simPathSuffix || strings.HasSuffix(p, "/"+simPathSuffix) {
		return nil
	}
	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		forbidden := timeForbidden
		msg := "%s.%s reads the wall clock; use the internal/sim clock (or annotate //dplint:allow determinism <reason>)"
		if importsPath(f, telemetryImportPath) {
			forbidden = timeForbiddenTelemetry
			msg = "%s.%s bypasses the injected telemetry.Clock, the only sanctioned " +
				"time source for telemetry users (or annotate //dplint:allow determinism <reason>)"
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := info.Uses[id].(*types.PkgName)
			if !ok {
				return true // a value, not a package reference
			}
			switch pkgName.Imported().Path() {
			case "time":
				if forbidden[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), msg, id.Name, sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !randDeterministic[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the global math/rand source; use a seeded rand.New(rand.NewSource(...))",
						id.Name, sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// importsPath reports whether the file imports the given package path.
func importsPath(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return true
		}
	}
	return false
}
