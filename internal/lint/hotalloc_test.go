package lint

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseEscapes(t *testing.T) {
	regions := []HotRegion{
		{Name: "r1", File: "internal/a/a.go", StartLine: 10, EndLine: 20, Dir: "internal/a"},
		{Name: "r1", File: "internal/a/a.go", StartLine: 30, EndLine: 40, Dir: "internal/a"},
		{Name: "r2", File: "internal/b/b.go", StartLine: 5, EndLine: 9, Dir: "internal/b"},
	}
	buildOutput := strings.Join([]string{
		"# dpreverser/internal/a",
		"internal/a/a.go:12:6: make([]float64, n) escapes to heap",
		"internal/a/a.go:35:6: make([]float64, n) escapes to heap",
		"internal/a/a.go:15:2: moved to heap: seq",
		"internal/a/a.go:25:2: x escapes to heap",     // outside both r1 spans
		"internal/a/a.go:11:9: inlining call to fill", // not an escape line
		"internal/b/b.go:7:10: leaking param: data",   // informational, ignored
		"internal/b/b.go:8:3: y does not escape",      // desired state, ignored
		"internal/b/b.go:6:9: &y escapes to heap",
		"",
	}, "\n")
	got := ParseEscapes(buildOutput, regions)
	want := []EscapeCount{
		// The two r1 spans aggregate; line numbers are dropped.
		{Region: "r1", Message: "make([]float64, n) escapes to heap", Count: 2},
		{Region: "r1", Message: "moved to heap: seq", Count: 1},
		{Region: "r2", Message: "&y escapes to heap", Count: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseEscapes = %+v, want %+v", got, want)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	entries := []EscapeCount{
		{Region: "gp-eval", Message: "make([]float64, n) escapes to heap", Count: 3},
		{Region: "isotp-feed", Message: "moved to heap: seq", Count: 1},
	}
	content := FormatBaseline(entries)
	if !strings.HasPrefix(content, "#") {
		t.Errorf("baseline does not start with the explanatory header:\n%s", content)
	}
	back, err := ParseBaseline(content)
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	if !reflect.DeepEqual(back, entries) {
		t.Errorf("round trip = %+v, want %+v", back, entries)
	}
	// Formatting what was parsed must reproduce the file byte-for-byte:
	// that is the acceptance property CI's regenerate-and-diff step rests on.
	if again := FormatBaseline(back); again != content {
		t.Errorf("second format differs:\n%q\nvs\n%q", again, content)
	}
}

func TestParseBaselineRejectsMalformedLines(t *testing.T) {
	if _, err := ParseBaseline("region only one field\n"); err == nil {
		t.Error("want error for a line without tabs")
	}
	if _, err := ParseBaseline("r\tmsg\tnot-a-number\n"); err == nil {
		t.Error("want error for a non-numeric count")
	}
}

func TestDiffBaseline(t *testing.T) {
	base := []EscapeCount{
		{Region: "r1", Message: "a escapes to heap", Count: 2},
		{Region: "r1", Message: "b escapes to heap", Count: 1},
		{Region: "r2", Message: "c escapes to heap", Count: 1},
	}
	if drift := DiffBaseline(base, base); len(drift) != 0 {
		t.Errorf("identical profiles drift: %v", drift)
	}
	current := []EscapeCount{
		{Region: "r1", Message: "a escapes to heap", Count: 3}, // grew
		{Region: "r1", Message: "d escapes to heap", Count: 1}, // new
		// "b" fixed entirely, "c" still listed but gone: both stale.
	}
	drift := DiffBaseline(base, current)
	if len(drift) != 4 {
		t.Fatalf("drift = %v, want 4 lines", drift)
	}
	joined := strings.Join(drift, "\n")
	for _, sub := range []string{
		`escape grew in region r1: "a escapes to heap" went 2 -> 3`,
		`new escape in region r1: "d escapes to heap"`,
		`stale baseline entry for region r1: "b escapes to heap"`,
		`stale baseline entry for region r2: "c escapes to heap"`,
	} {
		if !strings.Contains(joined, sub) {
			t.Errorf("drift missing %q:\n%s", sub, joined)
		}
	}
}

// TestHotRegionsAndDirectiveCheck resolves hotpath directives to function
// spans (doc-comment and line-above forms, shared region names) and
// verifies the registry-run half flags directives not attached to any
// function declaration.
func TestHotRegionsAndDirectiveCheck(t *testing.T) {
	src := `package hot

// Feed is the region entry point.
//
//dplint:hotpath hot-feed
func Feed(b []byte) int {
	return len(b)
}

//dplint:hotpath hot-feed
func feedAux(b []byte) int {
	return cap(b)
}

//dplint:hotpath hot-orphan
var sink int

func body() {
	//dplint:hotpath hot-inner
	_ = sink
}
`
	files := map[string]string{"internal/hot/hot.go": src}
	m := loadFixture(t, files)

	regions := HotRegions(m)
	if len(regions) != 2 {
		t.Fatalf("HotRegions = %+v, want 2 regions", regions)
	}
	for i, fn := range []string{"func Feed", "func feedAux"} {
		r := regions[i]
		start := lineOf(t, src, fn)
		if r.Name != "hot-feed" || r.File != "internal/hot/hot.go" ||
			r.Dir != "internal/hot" || r.StartLine != start || r.EndLine <= start {
			t.Errorf("region %d = %+v, want hot-feed spanning from line %d", i, r, start)
		}
	}

	res, err := RunModule(m, []*Analyzer{HotAlloc})
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	if len(res.Diagnostics) != 2 {
		t.Fatalf("diagnostics = %v, want the two unattached directives", res.Diagnostics)
	}
	for i, region := range []string{"hot-orphan", "hot-inner"} {
		d := res.Diagnostics[i]
		if d.Analyzer != "hotalloc" || !strings.Contains(d.Message, region) {
			t.Errorf("diagnostic %d = %s, want hotalloc flagging %s", i, d, region)
		}
	}
}
