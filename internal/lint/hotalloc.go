package lint

import (
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// HotAlloc guards the allocation profile of the pipeline's hot paths.
// Functions annotated //dplint:hotpath <region> (the GP evaluator and the
// per-frame reassemblers) are the per-frame and per-evaluation inner
// loops where a new heap allocation is a real regression, but escape
// behaviour is invisible in source review — it depends on what the
// compiler's escape analysis proves.
//
// `dplint -hotalloc` makes it visible and ratcheted: it runs
// `go build -gcflags=-m` over the packages containing hotpath regions
// (with a scratch GOCACHE, since cached builds suppress compiler
// diagnostics), keeps the "escapes to heap" / "moved to heap" lines that
// fall inside annotated regions, aggregates them to (region, message,
// count) — deliberately excluding line numbers, so unrelated edits above
// a region do not churn the file — and diffs the result against the
// committed HOTALLOC_BASELINE.txt. A new escape fails the check; a fixed
// escape fails it too, until the baseline is regenerated with
// -write-baseline and the improvement is committed.
//
// The analyzer's in-registry Run is the cheap half: it validates that
// every hotpath directive actually sits on a function declaration, so a
// drifted annotation cannot silently unguard a region.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "ratchet compiler-reported heap escapes in //dplint:hotpath regions " +
		"against HOTALLOC_BASELINE.txt (full check via dplint -hotalloc)",
	Run: runHotAllocDirectiveCheck,
}

// DefaultBaselineFile is the committed escape baseline at the module root.
const DefaultBaselineFile = "HOTALLOC_BASELINE.txt"

// runHotAllocDirectiveCheck verifies hotpath directives are attached to
// function declarations: each must be the line above a func or part of
// its doc comment.
func runHotAllocDirectiveCheck(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		attached := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					attached[c] = true
				}
			}
		}
		funcStart := map[int]bool{}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				funcStart[pass.Fset().Position(fd.Pos()).Line] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, _ := parseDirective(c)
				if d == nil || d.Kind != "hotpath" {
					continue
				}
				line := pass.Fset().Position(c.Pos()).Line
				if !attached[c] && !funcStart[line+1] {
					pass.Reportf(c.Pos(),
						"dplint:hotpath %s is not attached to a function declaration; "+
							"the region guards nothing", d.Args[0])
				}
			}
		}
	}
	return nil
}

// HotRegion is one annotated function: escapes reported inside its line
// span belong to the named region. Several functions may share a region
// name; their escapes aggregate.
type HotRegion struct {
	Name      string
	File      string // module-relative
	StartLine int
	EndLine   int
	Dir       string // package dir relative to module root ("." for root)
}

// HotRegions resolves every well-attached hotpath directive to the
// function span it guards.
func HotRegions(m *Module) []HotRegion {
	var out []HotRegion
	seen := map[string]bool{}
	for _, pkg := range m.Packages {
		for i, f := range pkg.Files {
			if seen[pkg.FilePaths[i]] {
				continue
			}
			seen[pkg.FilePaths[i]] = true
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				name := hotpathName(m, f, fd)
				if name == "" {
					continue
				}
				out = append(out, HotRegion{
					Name:      name,
					File:      pkg.FilePaths[i],
					StartLine: m.Fset.Position(fd.Pos()).Line,
					EndLine:   m.Fset.Position(fd.End()).Line,
					Dir:       pkg.Dir,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].StartLine < out[j].StartLine
	})
	return out
}

// hotpathName returns the region name of a hotpath directive in the
// function's doc comment or on the line immediately above it, or "".
func hotpathName(m *Module, f *ast.File, fd *ast.FuncDecl) string {
	funcLine := m.Fset.Position(fd.Pos()).Line
	var comments []*ast.Comment
	if fd.Doc != nil {
		comments = fd.Doc.List
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if m.Fset.Position(c.Pos()).Line == funcLine-1 {
				comments = append(comments, c)
			}
		}
	}
	for _, c := range comments {
		if d, _ := parseDirective(c); d != nil && d.Kind == "hotpath" {
			return d.Args[0]
		}
	}
	return ""
}

// EscapeCount aggregates the compiler's escape diagnostics for one region.
type EscapeCount struct {
	Region  string `json:"region"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// escapeLineRE matches one compiler diagnostic: path:line:col: message.
var escapeLineRE = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.+?):?$`)

// CollectEscapes builds the packages containing hot regions with
// -gcflags=-m under a scratch GOCACHE and aggregates the heap-escape
// diagnostics falling inside the regions.
func CollectEscapes(m *Module, regions []HotRegion) ([]EscapeCount, error) {
	if len(regions) == 0 {
		return nil, nil
	}
	dirSet := map[string]bool{}
	for _, r := range regions {
		dirSet[r.Dir] = true
	}
	var patterns []string
	for d := range dirSet {
		if d == "." {
			patterns = append(patterns, ".")
		} else {
			patterns = append(patterns, "./"+d)
		}
	}
	sort.Strings(patterns)

	// A warm build cache suppresses compiler diagnostics entirely, so the
	// build must run against a scratch cache every time.
	scratch, err := os.MkdirTemp("", "dplint-hotalloc-gocache-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)

	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = m.Root
	cmd.Env = append(os.Environ(), "GOCACHE="+scratch)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return ParseEscapes(string(out), regions), nil
}

// ParseEscapes maps `go build -gcflags=-m` output onto hot regions. Only
// "escapes to heap" and "moved to heap" lines count; the informational
// "does not escape" lines are the desired state and are ignored.
func ParseEscapes(buildOutput string, regions []HotRegion) []EscapeCount {
	counts := map[[2]string]int{}
	for _, line := range strings.Split(buildOutput, "\n") {
		sub := escapeLineRE.FindStringSubmatch(strings.TrimSpace(line))
		if sub == nil {
			continue
		}
		msg := sub[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := sub[1]
		lineNo, _ := strconv.Atoi(sub[2])
		for _, r := range regions {
			if r.File == file && lineNo >= r.StartLine && lineNo <= r.EndLine {
				counts[[2]string{r.Name, msg}]++
				break
			}
		}
	}
	out := make([]EscapeCount, 0, len(counts))
	for k, n := range counts {
		out = append(out, EscapeCount{Region: k[0], Message: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Region != out[j].Region {
			return out[i].Region < out[j].Region
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// baselineHeader explains the committed file; FormatBaseline always emits
// it so regeneration is byte-stable.
const baselineHeader = `# dplint hotalloc baseline: compiler-reported heap escapes inside
# //dplint:hotpath regions, aggregated as region<TAB>message<TAB>count.
# Line numbers are deliberately excluded so edits above a region do not
# churn this file. Regenerate with:
#
#	go run ./cmd/dplint -hotalloc -write-baseline
#
`

// FormatBaseline renders the committed baseline file content.
func FormatBaseline(entries []EscapeCount) string {
	var b strings.Builder
	b.WriteString(baselineHeader)
	for _, e := range entries {
		fmt.Fprintf(&b, "%s\t%s\t%d\n", e.Region, e.Message, e.Count)
	}
	return b.String()
}

// ParseBaseline reads the entry lines back out of baseline file content.
func ParseBaseline(content string) ([]EscapeCount, error) {
	var out []EscapeCount
	for i, line := range strings.Split(content, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want region<TAB>message<TAB>count, got %q", i+1, line)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("baseline line %d: bad count %q", i+1, parts[2])
		}
		out = append(out, EscapeCount{Region: parts[0], Message: parts[1], Count: n})
	}
	return out, nil
}

// DiffBaseline compares current escapes against the committed baseline.
// Every returned line is a failure: regressions (new or grown escapes)
// and stale entries (fixed escapes the baseline still lists — regenerate
// to ratchet down).
func DiffBaseline(baseline, current []EscapeCount) []string {
	key := func(e EscapeCount) [2]string { return [2]string{e.Region, e.Message} }
	base := map[[2]string]int{}
	for _, e := range baseline {
		base[key(e)] = e.Count
	}
	cur := map[[2]string]int{}
	for _, e := range current {
		cur[key(e)] = e.Count
	}
	var lines []string
	for _, e := range current {
		was := base[key(e)]
		switch {
		case was == 0:
			lines = append(lines, fmt.Sprintf(
				"new escape in region %s: %q (count %d); keep the value on the stack or regenerate the baseline with a justification",
				e.Region, e.Message, e.Count))
		case e.Count > was:
			lines = append(lines, fmt.Sprintf(
				"escape grew in region %s: %q went %d -> %d",
				e.Region, e.Message, was, e.Count))
		}
	}
	for _, e := range baseline {
		if n, ok := cur[key(e)]; !ok || n < e.Count {
			lines = append(lines, fmt.Sprintf(
				"stale baseline entry for region %s: %q (baseline %d, now %d); run -write-baseline to ratchet down",
				e.Region, e.Message, e.Count, cur[key(e)]))
		}
	}
	sort.Strings(lines)
	return lines
}
