package lint

import "testing"

// TestSelfLintClean runs the full suite over this repository itself, the
// same way `go run ./cmd/dplint` and CI do: every diagnostic must either
// be fixed or carry a reasoned //dplint:allow, and every allow must still
// be earning its keep.
func TestSelfLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole module")
	}
	m, err := LoadModule("../..", false)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	res, err := RunModule(m, AllAnalyzers())
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("unsuppressed: %s", d)
	}
	for _, d := range res.StaleAllows() {
		t.Errorf("stale allow at %s:%d (%v): it suppressed nothing; remove it", d.File, d.Line, d.Args)
	}
	if len(res.Suppressed) == 0 {
		t.Error("no suppressed findings at all — the allow index is likely broken, " +
			"since the repo carries reasoned //dplint:allow directives")
	}
}
