package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHold forbids blocking or re-entrant operations while a sync.Mutex
// or sync.RWMutex is held. Holding a lock across a channel operation, a
// network write or a user-supplied callback turns one slow peer into a
// stall for every other goroutine contending on that lock — the exact
// failure mode a diagnostic capture server cannot afford.
//
// While any lock is held, the analyzer flags:
//
//   - channel sends, receives, selects and ranges over channels;
//   - calls into package net (Dial, Conn.Read/Write, ...) and
//     fmt.Fprint* aimed at a net.Conn;
//   - time.Sleep and (*sync.WaitGroup).Wait;
//   - calls through function-typed struct fields or parameters — user
//     callbacks whose body the lock holder cannot see.
//
// It also flags returning with a lock still held and no defer-unlock
// registered: on multi-return functions that is how unlocks get lost.
//
// Lock state is tracked syntactically per function body: branches are
// analysed with a copy of the held set, so `if err { mu.Unlock(); return }`
// does not leak state into the fall-through path. Function literals are
// separate bodies (a closure *defined* under a lock runs later, under
// whatever lock discipline its call site has). (*sync.Cond).Wait is
// exempt — it releases the mutex internally — as are calls to named
// local closures, whose bodies are visible a few lines up.
//
// A deliberate hold (e.g. a mutex whose documented contract is
// serialising a callback) is annotated //dplint:allow lockhold <why>.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc: "no channel operations, network calls, sleeps or user callbacks " +
		"while a sync.Mutex/RWMutex is held; no return paths that skip the unlock",
	Run: runLockHold,
}

func runLockHold(pass *Pass) error {
	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					lockWalkBody(pass, info, n.Type.Params, n.Body.List, lockState{})
				}
			case *ast.FuncLit:
				lockWalkBody(pass, info, n.Type.Params, n.Body.List, lockState{})
			}
			return true
		})
	}
	return nil
}

// lockEntry is one currently-held lock.
type lockEntry struct {
	key      string // rendered receiver expression, e.g. "s.mu"
	pos      token.Pos
	deferred bool // a defer <key>.Unlock() is registered
}

// lockState maps rendered receiver expressions to held locks.
type lockState map[string]*lockEntry

func (s lockState) clone() lockState {
	out := lockState{}
	for k, v := range s {
		e := *v
		out[k] = &e
	}
	return out
}

func (s lockState) names() string {
	var keys []string
	for k := range s {
		keys = append(keys, k)
	}
	if len(keys) > 1 {
		// Deterministic message independent of map order.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
	}
	return strings.Join(keys, ", ")
}

// lockOp classifies a call as Lock/Unlock on a sync mutex and yields the
// receiver key.
func lockOp(info *types.Info, call *ast.CallExpr) (key string, isLock, isUnlock bool) {
	full := calleeFullName(info, call)
	switch full {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		isLock = true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		isUnlock = true
	default:
		return "", false, false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X), isLock, isUnlock
	}
	// Promoted method on an embedded mutex: `s.Lock()` parses as a
	// selector too, so only a bare `Lock()` inside a method lands here.
	return "self", isLock, isUnlock
}

// lockWalkBody walks a statement list tracking held locks. Branch bodies
// get a clone of the state so early-unlock-and-return paths stay
// independent of the fall-through path.
func lockWalkBody(pass *Pass, info *types.Info, params *ast.FieldList, stmts []ast.Stmt, held lockState) {
	for _, s := range stmts {
		lockWalkStmt(pass, info, params, s, held)
	}
}

func lockWalkStmt(pass *Pass, info *types.Info, params *ast.FieldList, s ast.Stmt, held lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, isLock, isUnlock := lockOp(info, call); isLock || isUnlock {
				if isLock {
					held[key] = &lockEntry{key: key, pos: call.Pos()}
				} else {
					delete(held, key)
				}
				return
			}
		}
		lockCheckExpr(pass, info, params, s.X, held)
	case *ast.DeferStmt:
		if key, _, isUnlock := lockOp(info, s.Call); isUnlock {
			if e := held[key]; e != nil {
				e.deferred = true
			}
			return
		}
		// Other deferred calls run at return; their bodies are not executed
		// under this statement, so only their arguments are checked.
		for _, arg := range s.Call.Args {
			lockCheckExpr(pass, info, params, arg, held)
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			lockCheckExpr(pass, info, params, res, held)
		}
		var leaked []string
		for _, e := range held {
			if !e.deferred {
				leaked = append(leaked, e.key)
			}
		}
		if len(leaked) > 0 {
			one := lockState{}
			for _, k := range leaked {
				one[k] = held[k]
			}
			pass.Reportf(s.Pos(),
				"return with %s still locked and no defer-unlock registered; "+
					"unlock before returning or `defer %s.Unlock()` at the lock site",
				one.names(), leaked[0])
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			pass.Reportf(s.Pos(), "channel send while %s is held; release the lock first "+
				"(or annotate //dplint:allow lockhold <why>)", held.names())
		}
		lockCheckExpr(pass, info, params, s.Value, held)
	case *ast.SelectStmt:
		if len(held) > 0 {
			pass.Reportf(s.Pos(), "select while %s is held; release the lock first "+
				"(or annotate //dplint:allow lockhold <why>)", held.names())
		}
		lockWalkStmt(pass, info, params, s.Body, held.clone())
	case *ast.RangeStmt:
		if len(held) > 0 && isChan(info, s.X) {
			pass.Reportf(s.Pos(), "range over a channel while %s is held; release the lock first "+
				"(or annotate //dplint:allow lockhold <why>)", held.names())
		}
		lockCheckExpr(pass, info, params, s.X, held)
		lockWalkBody(pass, info, params, s.Body.List, held.clone())
	case *ast.IfStmt:
		if s.Init != nil {
			lockWalkStmt(pass, info, params, s.Init, held)
		}
		lockCheckExpr(pass, info, params, s.Cond, held)
		lockWalkBody(pass, info, params, s.Body.List, held.clone())
		if s.Else != nil {
			lockWalkStmt(pass, info, params, s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lockWalkStmt(pass, info, params, s.Init, held)
		}
		if s.Cond != nil {
			lockCheckExpr(pass, info, params, s.Cond, held)
		}
		lockWalkBody(pass, info, params, s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			lockWalkStmt(pass, info, params, s.Init, held)
		}
		if s.Tag != nil {
			lockCheckExpr(pass, info, params, s.Tag, held)
		}
		lockWalkStmt(pass, info, params, s.Body, held.clone())
	case *ast.TypeSwitchStmt:
		lockWalkStmt(pass, info, params, s.Body, held.clone())
	case *ast.CaseClause:
		lockWalkBody(pass, info, params, s.Body, held)
	case *ast.CommClause:
		lockWalkBody(pass, info, params, s.Body, held)
	case *ast.BlockStmt:
		lockWalkBody(pass, info, params, s.List, held)
	case *ast.LabeledStmt:
		lockWalkStmt(pass, info, params, s.Stmt, held)
	case *ast.GoStmt:
		// The goroutine does not run under this lock; only argument
		// evaluation is synchronous.
		for _, arg := range s.Call.Args {
			lockCheckExpr(pass, info, params, arg, held)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lockCheckExpr(pass, info, params, e, held)
		}
		for _, e := range s.Lhs {
			lockCheckExpr(pass, info, params, e, held)
		}
	case *ast.DeclStmt:
		lockCheckExpr(pass, info, params, s, held)
	}
}

// lockCheckExpr flags blocking operations inside an expression evaluated
// while locks are held. Function-literal subtrees are skipped: they run at
// their own call sites.
func lockCheckExpr(pass *Pass, info *types.Info, params *ast.FieldList, node ast.Node, held lockState) {
	if len(held) == 0 || node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while %s is held; release the lock first "+
					"(or annotate //dplint:allow lockhold <why>)", held.names())
			}
		case *ast.CallExpr:
			lockCheckCall(pass, info, params, n, held)
		}
		return true
	})
}

// lockCheckCall flags a single call made while locks are held.
func lockCheckCall(pass *Pass, info *types.Info, params *ast.FieldList, call *ast.CallExpr, held lockState) {
	fn := calleeFunc(info, call)
	if fn != nil {
		full := fn.FullName()
		switch full {
		case "time.Sleep":
			pass.Reportf(call.Pos(), "time.Sleep while %s is held stalls every contender "+
				"(or annotate //dplint:allow lockhold <why>)", held.names())
			return
		case "(*sync.WaitGroup).Wait":
			pass.Reportf(call.Pos(), "WaitGroup.Wait while %s is held can deadlock against "+
				"workers that need the lock to finish (or annotate //dplint:allow lockhold <why>)",
				held.names())
			return
		case "(*sync.Cond).Wait": // releases the mutex internally
			return
		}
		if pkg := fn.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "net":
				pass.Reportf(call.Pos(), "network call %s while %s is held lets one slow peer "+
					"stall every contender (or annotate //dplint:allow lockhold <why>)",
					full, held.names())
				return
			case "fmt":
				if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
					if t := info.TypeOf(call.Args[0]); t != nil && isNamedType(t, "net", "Conn") {
						pass.Reportf(call.Pos(), "%s to a net.Conn while %s is held lets one slow "+
							"peer stall every contender (or annotate //dplint:allow lockhold <why>)",
							full, held.names())
					}
				}
				return
			}
		}
		return
	}
	// No *types.Func: a function-valued expression. Flag opaque user
	// callbacks — struct fields and parameters — but not named local
	// closures, whose bodies are visible in the same function.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if selection, ok := info.Selections[fun]; ok && selection.Kind() == types.FieldVal {
			if _, isSig := selection.Type().Underlying().(*types.Signature); isSig {
				pass.Reportf(call.Pos(), "user callback %s invoked while %s is held; the callback "+
					"can block or re-enter the lock (or annotate //dplint:allow lockhold <why>)",
					types.ExprString(fun), held.names())
			}
		}
	case *ast.Ident:
		v, ok := info.Uses[fun].(*types.Var)
		if !ok || v.Type() == nil {
			return
		}
		if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
			return
		}
		if params != nil && params.Pos().IsValid() &&
			v.Pos() >= params.Pos() && v.Pos() < params.End() {
			pass.Reportf(call.Pos(), "caller-supplied callback %s invoked while %s is held; the "+
				"callback can block or re-enter the lock (or annotate //dplint:allow lockhold <why>)",
				fun.Name, held.names())
		}
	}
}
