package lint

import "testing"

// TestLockHold exercises the blocking-under-lock rules (channel
// operations, sleeps, WaitGroup.Wait, opaque callbacks) and their
// negatives (unlock first, deferred unlock, local closures, Cond.Wait,
// closures defined but not called under the lock). The net-package and
// Fprint-to-net.Conn rules are exercised by the repo's own history of
// real findings (internal/canbridge) rather than re-importing net here:
// type-checking package net from source dominates fixture runtime.
func TestLockHold(t *testing.T) {
	files := map[string]string{
		"internal/locks/locks.go": `package locks

import (
	"sync"
	"time"
)

type hub struct {
	mu       sync.Mutex
	rw       sync.RWMutex
	cond     *sync.Cond
	onChange func(int)
	ch       chan int
}

func (h *hub) sendUnderLock() {
	h.mu.Lock()
	h.ch <- 1 // want lockhold
	h.mu.Unlock()
}

func (h *hub) sendAfterUnlock() {
	h.mu.Lock()
	h.mu.Unlock()
	h.ch <- 1
}

func (h *hub) recvUnderLock() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	v := <-h.ch // want lockhold
	return v
}

func (h *hub) selectUnderLock() {
	h.mu.Lock()
	defer h.mu.Unlock()
	select { // want lockhold
	case v := <-h.ch:
		_ = v
	default:
	}
}

func (h *hub) sleepUnderRLock() {
	h.rw.RLock()
	time.Sleep(time.Millisecond) // want lockhold
	h.rw.RUnlock()
}

func (h *hub) waitUnderLock(wg *sync.WaitGroup) {
	h.mu.Lock()
	defer h.mu.Unlock()
	wg.Wait() // want lockhold
}

func (h *hub) fieldCallbackUnderLock() {
	h.mu.Lock()
	h.onChange(1) // want lockhold
	h.mu.Unlock()
}

func (h *hub) paramCallbackUnderLock(cb func(int)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cb(2) // want lockhold
}

func (h *hub) localClosureUnderLock() {
	bump := func(int) {}
	h.mu.Lock()
	bump(3)
	h.mu.Unlock()
}

func (h *hub) condWaitExempt() {
	h.mu.Lock()
	h.cond.Wait()
	h.mu.Unlock()
}

func (h *hub) returnWhileHeld(flip bool) int {
	h.mu.Lock()
	if flip {
		h.mu.Unlock()
		return 0
	}
	return 1 // want lockhold
}

func (h *hub) deferredUnlockReturn(flip bool) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if flip {
		return 0
	}
	return 1
}

func (h *hub) closureDefinedUnderLock() func() {
	h.mu.Lock()
	defer h.mu.Unlock()
	f := func() { h.ch <- 9 }
	return f
}
`,
	}
	res := runFixture(t, files, LockHold)
	checkMarkers(t, files, res)
}
