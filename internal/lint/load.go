package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path ("dpreverser/internal/gp"); external test
	// packages carry a "_test" suffix.
	Path string
	// Dir is the package directory relative to the module root.
	Dir string
	// Files are the parsed files, parallel to FilePaths (module-relative,
	// forward slashes).
	Files     []*ast.File
	FilePaths []string
	// Types and TypesInfo carry full type information for the files.
	Types     *types.Package
	TypesInfo *types.Info
}

// Module is a whole module loaded for analysis: every package parsed and
// type-checked in dependency order, plus module-wide indexes the
// analyzers share.
type Module struct {
	// Root is the absolute module root (the go.mod directory).
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every file in every package.
	Fset *token.FileSet
	// Packages lists the packages in topological (dependency) order.
	Packages []*Package

	// funcDecls maps each function/method object declared anywhere in the
	// module to its syntax, so analyzers can look across package
	// boundaries (e.g. resolving the body behind `go s.worker(i)`).
	funcDecls map[*types.Func]*ast.FuncDecl
	byPath    map[string]*Package
}

// FuncDecl resolves a function or method object declared in this module
// to its declaration, or nil for external (stdlib) functions.
func (m *Module) FuncDecl(fn *types.Func) *ast.FuncDecl {
	if fn == nil {
		return nil
	}
	return m.funcDecls[fn]
}

// PackageByPath returns the loaded package with the given import path, or
// nil. Analyzers inspecting a body resolved across a package boundary
// need the owning package's type information, not the current pass's.
func (m *Module) PackageByPath(path string) *Package {
	return m.byPath[path]
}

// cgoOff disables cgo in the shared build context exactly once: the
// source importer type-checks the standard library from source, and the
// pure-Go variants of net & friends are the ones that type-check without
// running cgo.
var cgoOff sync.Once

// LoadModule parses and type-checks every package under root (a module
// root containing go.mod). Test files are included when includeTests is
// set: in-package _test.go files join their package, external _test
// packages are loaded as separate entries. Hidden directories, vendor/
// and testdata/ are skipped.
func LoadModule(root string, includeTests bool) (*Module, error) {
	cgoOff.Do(func() { build.Default.CgoEnabled = false })

	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, err
	}

	m := &Module{
		Root:      absRoot,
		Path:      modPath,
		Fset:      token.NewFileSet(),
		funcDecls: map[*types.Func]*ast.FuncDecl{},
		byPath:    map[string]*Package{},
	}

	dirs, err := packageDirs(absRoot)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		ps, err := m.parseDir(dir, includeTests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ps...)
	}
	pkgs, err = topoSort(pkgs, modPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		local: map[string]*types.Package{},
		std:   importer.ForCompiler(m.Fset, "source", nil),
	}
	for _, p := range pkgs {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.Path, m.Fset, p.Files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.Path, err)
		}
		p.Types, p.TypesInfo = tpkg, info
		m.byPath[p.Path] = p
		// External test packages import the package under test by its real
		// path; only non-test packages are importable.
		if !strings.HasSuffix(p.Path, "_test") {
			imp.local[p.Path] = tpkg
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					m.funcDecls[fn] = fd
				}
			}
		}
	}
	m.Packages = pkgs
	return m, nil
}

// modulePath reads the module declaration out of a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module declaration in %s", gomod)
}

// packageDirs walks the module tree for directories containing .go files,
// skipping hidden and vendored subtrees. Paths are module-relative ("."
// for the root itself).
func packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "vendor" || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				out = append(out, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// parseDir parses one directory into its package (and, with includeTests,
// its external test package).
func (m *Module) parseDir(relDir string, includeTests bool) ([]*Package, error) {
	dir := filepath.Join(m.Root, filepath.FromSlash(relDir))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	importPath := m.Path
	if relDir != "." {
		importPath = m.Path + "/" + relDir
	}

	prod := &Package{Path: importPath, Dir: relDir}
	ext := &Package{Path: importPath + "_test", Dir: relDir}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !includeTests {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		rel := name
		if relDir != "." {
			rel = relDir + "/" + name
		}
		if isTest && strings.HasSuffix(f.Name.Name, "_test") {
			ext.Files = append(ext.Files, f)
			ext.FilePaths = append(ext.FilePaths, rel)
		} else {
			prod.Files = append(prod.Files, f)
			prod.FilePaths = append(prod.FilePaths, rel)
		}
	}
	var out []*Package
	if len(prod.Files) > 0 {
		out = append(out, prod)
	}
	if len(ext.Files) > 0 {
		out = append(out, ext)
	}
	return out, nil
}

// localImports lists the module-internal import paths of a package.
func localImports(p *Package, modPath string) []string {
	seen := map[string]bool{}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == modPath || strings.HasPrefix(path, modPath+"/") {
				seen[path] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// topoSort orders packages so every package follows its module-internal
// dependencies. External test packages additionally depend on the package
// under test.
func topoSort(pkgs []*Package, modPath string) ([]*Package, error) {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	var out []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case 1:
			return fmt.Errorf("import cycle through %s", p.Path)
		case 2:
			return nil
		}
		state[p.Path] = 1
		deps := localImports(p, modPath)
		if under, ok := strings.CutSuffix(p.Path, "_test"); ok {
			deps = append(deps, under)
		}
		for _, dep := range deps {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p.Path] = 2
		out = append(out, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// moduleImporter resolves module-internal imports from the packages
// already checked in this load, and everything else (the standard
// library) through the source importer.
type moduleImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (i *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.local[path]; ok {
		return p, nil
	}
	return i.std.Import(path)
}
