package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// TestParseDirective pins the exact-token directive grammar: well-formed
// allow/hotpath directives parse, near-misses and malformed forms fail
// loudly, and ordinary comments stay ordinary.
func TestParseDirective(t *testing.T) {
	cases := []struct {
		text   string
		kind   string   // expected directive kind; "" means no directive
		args   []string // expected Args when kind != ""
		reason string
		errSub string // expected substring of the error message; "" means none
	}{
		{text: "//dplint:allow lockhold documented hold", kind: "allow",
			args: []string{"lockhold"}, reason: "documented hold"},
		{text: "//dplint:allow lockhold,determinism both at once", kind: "allow",
			args: []string{"lockhold", "determinism"}, reason: "both at once"},
		{text: "//dplint:hotpath gp-eval", kind: "hotpath", args: []string{"gp-eval"}},
		{text: "//dplint:allow", errSub: "needs an analyzer name"},
		{text: "//dplint:allow ,lockhold", errSub: "empty analyzer name"},
		{text: "//dplint:allowed lockhold oops", errSub: `unknown dplint directive "allowed"`},
		{text: "//dplint:frobnicate", errSub: "unknown dplint directive"},
		{text: "//dplint:hotpath", errSub: "exactly one region name"},
		{text: "//dplint:hotpath two words", errSub: "exactly one region name"},
		{text: "// dplint:allow lockhold not directive position"},
		{text: "// an ordinary comment"},
		{text: "/*dplint:allow lockhold block comments never count*/"},
	}
	for _, tc := range cases {
		d, errMsg := parseDirective(&ast.Comment{Text: tc.text})
		if tc.errSub != "" {
			if errMsg == "" || !strings.Contains(errMsg, tc.errSub) {
				t.Errorf("parseDirective(%q) error = %q, want substring %q", tc.text, errMsg, tc.errSub)
			}
			continue
		}
		if errMsg != "" {
			t.Errorf("parseDirective(%q) unexpected error %q", tc.text, errMsg)
			continue
		}
		if tc.kind == "" {
			if d != nil {
				t.Errorf("parseDirective(%q) = %+v, want no directive", tc.text, d)
			}
			continue
		}
		if d == nil {
			t.Errorf("parseDirective(%q) = nil, want kind %s", tc.text, tc.kind)
			continue
		}
		if d.Kind != tc.kind || d.Reason != tc.reason || len(d.Args) != len(tc.args) {
			t.Errorf("parseDirective(%q) = %+v, want kind=%s args=%v reason=%q",
				tc.text, d, tc.kind, tc.args, tc.reason)
			continue
		}
		for i := range tc.args {
			if d.Args[i] != tc.args[i] {
				t.Errorf("parseDirective(%q) args = %v, want %v", tc.text, d.Args, tc.args)
			}
		}
	}
}

// TestAllowSuppressionScope pins where an allow directive reaches: the
// same line, the line below, and a multi-line statement starting on the
// line below — but not a statement two lines down.
func TestAllowSuppressionScope(t *testing.T) {
	files := map[string]string{
		"internal/scope/scope.go": `package scope

import "time"

func sameLine() time.Time {
	return time.Now() //dplint:allow determinism progress reporting
}

func lineAbove() time.Time {
	//dplint:allow determinism measured quantity
	return time.Now()
}

func multiLineStmt() time.Duration {
	//dplint:allow determinism whole statement is covered
	d := time.Since(
		time.Now(),
	)
	return d
}

func outOfScope() time.Time {
	//dplint:allow determinism only the next statement
	a := time.Now()
	_ = a
	return time.Now() // want determinism
}
`,
	}
	res := runFixture(t, files, Determinism)
	checkMarkers(t, files, res)
	// Both Since and Now inside the multi-line statement are absorbed by
	// the one directive above the statement.
	if len(res.Suppressed) != 5 {
		t.Errorf("suppressed = %d findings, want 5:\n%v", len(res.Suppressed), res.Suppressed)
	}
	if stale := res.StaleAllows(); len(stale) != 0 {
		t.Errorf("stale allows = %v, want none", stale)
	}
}

// TestAllowWrongAnalyzerDoesNotSuppress proves suppression is matched by
// exact analyzer name: an allow for a different analyzer leaves the
// diagnostic standing and is itself stale.
func TestAllowWrongAnalyzerDoesNotSuppress(t *testing.T) {
	files := map[string]string{
		"internal/wrong/wrong.go": `package wrong

import "time"

func f() time.Time {
	return time.Now() //dplint:allow lockhold wrong analyzer // want determinism
}
`,
	}
	res := runFixture(t, files, Determinism, LockHold)
	checkMarkers(t, files, res)
	stale := res.StaleAllows()
	if len(stale) != 1 || stale[0].Args[0] != "lockhold" {
		t.Fatalf("stale allows = %v, want the lockhold directive", stale)
	}
}

// TestStaleAllowDetection: a directive that suppresses nothing is
// reported by StaleAllows with its position, the audit -audit-allows
// enforces.
func TestStaleAllowDetection(t *testing.T) {
	files := map[string]string{
		"internal/stale/stale.go": `package stale

//dplint:allow determinism nothing here uses the clock
var x = 1
`,
	}
	res := runFixture(t, files, Determinism)
	checkMarkers(t, files, res)
	stale := res.StaleAllows()
	if len(stale) != 1 {
		t.Fatalf("stale allows = %v, want exactly one", stale)
	}
	if stale[0].File != "internal/stale/stale.go" || stale[0].Line != 3 {
		t.Errorf("stale allow at %s:%d, want internal/stale/stale.go:3", stale[0].File, stale[0].Line)
	}
}

// TestMalformedDirectivesAreDiagnostics: directives that fail to parse
// surface as findings of the "directives" pseudo-analyzer instead of
// silently suppressing nothing, and an allow naming an unknown analyzer
// is flagged at its site.
func TestMalformedDirectivesAreDiagnostics(t *testing.T) {
	files := map[string]string{
		"internal/mal/mal.go": `package mal

import "time"

func f() time.Time {
	return time.Now() //dplint:allowed determinism near miss // want directives determinism
}

func g() time.Time {
	return time.Now() //dplint:allow nosuchanalyzer reason // want directives determinism
}
`,
	}
	res := runFixture(t, files, Determinism)
	checkMarkers(t, files, res)
	var sawNearMiss, sawUnknown bool
	for _, d := range res.Diagnostics {
		if d.Analyzer != "directives" {
			continue
		}
		if strings.Contains(d.Message, `unknown dplint directive "allowed"`) {
			sawNearMiss = true
		}
		if strings.Contains(d.Message, `unknown analyzer "nosuchanalyzer"`) {
			sawUnknown = true
		}
	}
	if !sawNearMiss || !sawUnknown {
		t.Errorf("directive diagnostics missing (near-miss=%v unknown=%v):\n%v",
			sawNearMiss, sawUnknown, res.Diagnostics)
	}
}
