package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixture writes a throwaway module to a temp dir and loads it. The
// module is named dpreverser so analyzers keyed on this repo's import
// paths (the telemetry clock rule, the Registry metric methods) see
// fixture packages under the paths they expect.
func loadFixture(t *testing.T, files map[string]string) *Module {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module dpreverser\n\ngo 1.22\n"
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, err := LoadModule(dir, true)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return m
}

// runFixture loads a fixture module and runs the given analyzers over it.
func runFixture(t *testing.T, files map[string]string, analyzers ...*Analyzer) *Result {
	t.Helper()
	m := loadFixture(t, files)
	res, err := RunModule(m, analyzers)
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	return res
}

// wantMarker introduces an expectation comment in fixture sources: a line
// ending in "// want <analyzer> [<analyzer>...]" must produce exactly one
// diagnostic per named analyzer at that line, and no other line may
// produce any.
const wantMarker = "// want "

// checkMarkers compares a run's unsuppressed diagnostics against the
// fixture's want markers, in the style of analysistest.
func checkMarkers(t *testing.T, files map[string]string, res *Result) {
	t.Helper()
	want := map[string]int{}
	for name, src := range files {
		if !strings.HasSuffix(name, ".go") {
			continue
		}
		for i, line := range strings.Split(src, "\n") {
			idx := strings.Index(line, wantMarker)
			if idx < 0 {
				continue
			}
			for _, a := range strings.Fields(line[idx+len(wantMarker):]) {
				want[fmt.Sprintf("%s:%d %s", name, i+1, a)]++
			}
		}
	}
	got := map[string]int{}
	for _, d := range res.Diagnostics {
		got[fmt.Sprintf("%s:%d %s", d.File, d.Line, d.Analyzer)]++
	}
	var missing, extra []string
	for k, n := range want {
		if got[k] < n {
			missing = append(missing, k)
		}
	}
	for k, n := range got {
		if want[k] < n {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing)+len(extra) > 0 {
		for _, d := range res.Diagnostics {
			t.Logf("diagnostic: %s", d)
		}
		t.Fatalf("marker mismatch:\n  missing: %v\n  unexpected: %v", missing, extra)
	}
}

// lineOf returns the 1-based line of the first occurrence of substr.
func lineOf(t *testing.T, src, substr string) int {
	t.Helper()
	idx := strings.Index(src, substr)
	if idx < 0 {
		t.Fatalf("fixture does not contain %q", substr)
	}
	return 1 + strings.Count(src[:idx], "\n")
}
