package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function object a call expression invokes, or
// nil for function-valued expressions, builtins and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeFullName renders the resolved callee's full name
// ("(*sync.WaitGroup).Done", "net.Dial") or "".
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.FullName()
	}
	return ""
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isChan reports whether the expression has channel type.
func isChan(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isNamedType reports whether t (or its pointer element) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
