package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ReasonExhaustive keeps two enumerations closed that the compiler cannot
// check:
//
// Error-reason coverage. Each transport package (isotp, vwtp, bmwtp)
// exports error sentinels and a Reason(err) classifier that folds them
// into the stable reason labels the telemetry error counters use. A
// sentinel the classifier does not mention silently lands in the
// catch-all bucket, which is how a new failure mode disappears from the
// dashboards. In any package that declares an exported
// `func Reason(error) ...`, every exported package-level `Err*` sentinel
// of type error must be referenced inside Reason's body.
//
// Metric-family registration. Every metric family registered on a
// telemetry Registry (Counter, CounterVec, Gauge, GaugeVec, Histogram,
// HistogramVec) must take its name from a declared constant — so
// scrapers and alert rules have one symbol to grep for — and each family
// name must be registered at most once across the module's non-test
// code; a second registration site means two subsystems silently share
// (and double-count) one time series. Test files are exempt: they
// register throwaway families on throwaway registries.
var ReasonExhaustive = &Analyzer{
	Name: "reasonexhaustive",
	Doc: "error sentinels must be covered by the package's Reason classifier; " +
		"telemetry metric families must be named by constants and registered once",
	Run: runReasonExhaustive,
}

func runReasonExhaustive(pass *Pass) error {
	checkReasonCoverage(pass)
	checkMetricRegistrations(pass)
	return nil
}

// checkReasonCoverage enforces the sentinel rule for packages declaring an
// exported Reason classifier.
func checkReasonCoverage(pass *Pass) {
	info := pass.Pkg.TypesInfo
	reason := findReasonDecl(pass.Pkg)
	if reason == nil || reason.Body == nil {
		return
	}
	covered := map[types.Object]bool{}
	ast.Inspect(reason.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				covered[obj] = true
			}
		}
		return true
	})
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Err") || !name.IsExported() {
						continue
					}
					obj := info.Defs[name]
					if obj == nil || !types.Identical(obj.Type(), errType) {
						continue
					}
					if !covered[obj] {
						pass.Reportf(name.Pos(),
							"sentinel %s is not covered by %s.Reason; uncovered errors fall into "+
								"the catch-all telemetry bucket", name.Name, pass.Pkg.Types.Name())
					}
				}
			}
		}
	}
}

// findReasonDecl returns the package-level exported Reason function taking
// an error, or nil.
func findReasonDecl(pkg *Package) *ast.FuncDecl {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Name.Name != "Reason" {
				continue
			}
			fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 1 && types.Identical(sig.Params().At(0).Type(), errType) {
				return fd
			}
		}
	}
	return nil
}

// registryMethods are the telemetry.Registry constructors whose first
// argument names a metric family.
var registryMethods = map[string]bool{
	"Counter":      true,
	"CounterVec":   true,
	"Gauge":        true,
	"GaugeVec":     true,
	"Histogram":    true,
	"HistogramVec": true,
}

// metricRegistration is one Registry constructor call site.
type metricRegistration struct {
	pos  token.Pos
	name string // resolved family name; "" when not a declared constant
	call *ast.CallExpr
}

// checkMetricRegistrations enforces the constant-name and register-once
// rules for the current package.
func checkMetricRegistrations(pass *Pass) {
	local := metricRegistrationsIn(pass.Module, pass.Pkg)
	if len(local) == 0 {
		return
	}
	// Earliest module-wide registration position per family name, so each
	// duplicate is reported exactly once, at every site but the first.
	first := map[string]token.Pos{}
	for _, pkg := range pass.Module.Packages {
		for _, reg := range metricRegistrationsIn(pass.Module, pkg) {
			if reg.name == "" {
				continue
			}
			if p, ok := first[reg.name]; !ok || reg.pos < p {
				first[reg.name] = reg.pos
			}
		}
	}
	for _, reg := range local {
		if reg.name == "" {
			pass.Reportf(reg.call.Args[0].Pos(),
				"metric family name must be a declared constant (like telemetry.MetricRuns), "+
					"not an inline string, so dashboards have one symbol to grep for")
			continue
		}
		if first[reg.name] < reg.pos {
			where := pass.Module.Fset.Position(first[reg.name])
			pass.Reportf(reg.call.Args[0].Pos(),
				"metric family %q is already registered at %s:%d; two registration sites "+
					"double-count one time series", reg.name,
				pass.Module.relFile(where.Filename), where.Line)
		}
	}
}

// metricRegistrationsIn lists Registry constructor calls in a package's
// non-test files. Constant-named registrations carry the resolved family
// name; literal or computed names carry "".
func metricRegistrationsIn(m *Module, pkg *Package) []metricRegistration {
	if strings.HasSuffix(pkg.Path, "_test") {
		return nil
	}
	var out []metricRegistration
	info := pkg.TypesInfo
	for i, f := range pkg.Files {
		if strings.HasSuffix(pkg.FilePaths[i], "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || !registryMethods[fn.Name()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil ||
				!isNamedType(sig.Recv().Type(), telemetryImportPath, "Registry") {
				return true
			}
			out = append(out, metricRegistration{
				pos:  call.Pos(),
				name: constStringArg(info, call.Args[0]),
				call: call,
			})
			return true
		})
	}
	return out
}

// constStringArg resolves an argument to the string value of the declared
// constant it references, or "" when it is anything else (literals
// included: the rule wants a named symbol, not just a constant value).
func constStringArg(info *types.Info, arg ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || c.Val().Kind() != constant.String {
		return ""
	}
	return constant.StringVal(c.Val())
}
