package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLifecycle demands a visible stop path for every `go`
// statement: a long-running server accumulates leaked goroutines exactly
// where a batch program could shrug them off, so every spawn must be
// observably joinable or cancellable. A `go` statement passes when the
// spawned function (a literal, or a function/method declared anywhere in
// this module) satisfies at least one of:
//
//   - WaitGroup pairing: the body calls (*sync.WaitGroup).Done — almost
//     always `defer wg.Done()` — and the spawning function calls
//     (*sync.WaitGroup).Add before the `go` statement;
//   - context plumbing: the body (or the call's arguments) carries a
//     context.Context, so cancellation reaches it;
//   - completion signal: the body sends on or closes a channel, making
//     termination observable to a receiver (the `done` / error-channel
//     join patterns).
//
// Spawning an external function whose body this module cannot see (e.g.
// `go srv.Serve(ln)`) is flagged unless a context flows through the call:
// wrap it in a literal that signals completion, or annotate a deliberate
// fire-and-forget with //dplint:allow goroutinelifecycle <why>.
var GoroutineLifecycle = &Analyzer{
	Name: "goroutinelifecycle",
	Doc: "every `go` statement needs a visible stop path " +
		"(WaitGroup Add/Done pairing, a context, or a completion-channel signal)",
	Run: runGoroutineLifecycle,
}

func runGoroutineLifecycle(pass *Pass) error {
	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		// Walk function by function so each `go` statement knows its
		// enclosing body (for the Add-before-go check).
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStmts(pass, info, fd.Body)
		}
	}
	return nil
}

// checkGoStmts flags unaccounted `go` statements inside body, treating
// body as the enclosing scope for Add-before-spawn checks. Function
// literals nested inside body are walked with their own body as the new
// scope.
func checkGoStmts(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				checkGoStmts(pass, info, n.Body)
				return false
			}
		case *ast.GoStmt:
			if !goStmtAccounted(pass, info, body, n) {
				pass.Reportf(n.Pos(), "goroutine has no visible stop path: spawn with a "+
					"WaitGroup Add/Done pair, thread a context, or signal completion on a "+
					"channel (or annotate //dplint:allow goroutinelifecycle <why>)")
			}
		}
		return true
	})
}

func goStmtAccounted(pass *Pass, info *types.Info, enclosing *ast.BlockStmt, g *ast.GoStmt) bool {
	spawnBody, bodyInfo := spawnedBody(pass, info, g.Call)
	if spawnBody == nil {
		// Opaque callee: accept only when a context flows through the call.
		for _, arg := range g.Call.Args {
			if t := info.TypeOf(arg); t != nil && isNamedType(t, "context", "Context") {
				return true
			}
		}
		return false
	}
	if bodyCallsWaitGroupDone(bodyInfo, spawnBody) && addBefore(info, enclosing, g.Pos()) {
		return true
	}
	if bodyUsesContext(bodyInfo, spawnBody) {
		return true
	}
	if bodySignalsChannel(bodyInfo, spawnBody) {
		return true
	}
	return false
}

// spawnedBody resolves the body of the function a go statement runs — a
// literal's own body, or the declaration of a function/method defined in
// this module — along with the type info of the package owning that body
// (a cross-package body is not covered by the spawning package's info).
// External functions return nil.
func spawnedBody(pass *Pass, info *types.Info, call *ast.CallExpr) (*ast.BlockStmt, *types.Info) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, info
	}
	if fn := calleeFunc(info, call); fn != nil {
		if fd := pass.Module.FuncDecl(fn); fd != nil {
			if fn.Pkg() != nil {
				if p := pass.Module.PackageByPath(fn.Pkg().Path()); p != nil {
					return fd.Body, p.TypesInfo
				}
			}
			return fd.Body, info
		}
	}
	return nil, nil
}

// bodyCallsWaitGroupDone reports whether the body calls
// (*sync.WaitGroup).Done, directly or deferred.
func bodyCallsWaitGroupDone(info *types.Info, body *ast.BlockStmt) bool {
	return containsCall(body, func(call *ast.CallExpr) bool {
		return calleeFullName(info, call) == "(*sync.WaitGroup).Done"
	})
}

// addBefore reports whether a (*sync.WaitGroup).Add call appears in the
// enclosing body before pos.
func addBefore(info *types.Info, enclosing *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= pos {
			return !found && n != nil
		}
		if call, ok := n.(*ast.CallExpr); ok &&
			calleeFullName(info, call) == "(*sync.WaitGroup).Add" {
			found = true
		}
		return !found
	})
	return found
}

// bodyUsesContext reports whether the body references any value of type
// context.Context (a parameter, a captured variable, a field read).
func bodyUsesContext(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if t := obj.Type(); t != nil && isNamedType(t, "context", "Context") {
			found = true
		}
		return !found
	})
	return found
}

// bodySignalsChannel reports whether the body sends on or closes a
// channel — an observable completion/termination signal.
func bodySignalsChannel(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if isBuiltin(info, n, "close") && len(n.Args) == 1 && isChan(info, n.Args[0]) {
				found = true
			}
		}
		return !found
	})
	return found
}

// containsCall reports whether any call in the subtree satisfies match.
func containsCall(root ast.Node, match func(*ast.CallExpr) bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && match(call) {
			found = true
		}
		return !found
	})
	return found
}
