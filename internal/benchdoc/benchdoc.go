// Package benchdoc is the committed benchmark-artifact format shared by
// cmd/benchjson (BENCH_gp.json) and the dpreversed load generator
// (BENCH_server.json): a history document {"entries": [...]} where each
// run appends one dated entry instead of clobbering the file, so a
// baseline's past stays diffable. Re-running with the same merge key
// (typically date + quick mode) replaces that entry, keeping same-day
// re-runs idempotent.
package benchdoc

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// History is the whole artifact: every recorded run, oldest first.
type History[E any] struct {
	Entries []E `json:"entries"`
}

// Load reads a history file; a missing file is an empty history. The raw
// bytes are returned alongside so callers with pre-history baselines can
// attempt a legacy-format conversion when no entries decoded.
func Load[E any](path string) (History[E], []byte, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return History[E]{}, nil, nil
	}
	if err != nil {
		return History[E]{}, nil, err
	}
	var h History[E]
	if err := json.Unmarshal(data, &h); err == nil && h.Entries != nil {
		return h, data, nil
	}
	return History[E]{}, data, nil
}

// Merge inserts e, replacing the first entry same() accepts and appending
// when none matches.
func (h *History[E]) Merge(e E, same func(old E) bool) {
	for i, old := range h.Entries {
		if same(old) {
			h.Entries[i] = e
			return
		}
	}
	h.Entries = append(h.Entries, e)
}

// Write persists the history as indented JSON with a trailing newline.
func (h History[E]) Write(path string) error {
	data, err := json.MarshalIndent(&h, "", "  ")
	if err != nil {
		return fmt.Errorf("benchdoc: encoding %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
