// Package ecu simulates electronic control units: the devices DP-Reverser's
// traffic ultimately comes from. An ECU owns a set of sensor-backed data
// identifiers (UDS DIDs or KWP local identifiers), encodes live signal
// values through manufacturer-proprietary formulas into response bytes, and
// runs actuators through the freeze / short-term-adjustment / return-control
// IO protocol the paper extracts in §4.5.
//
// The proprietary knowledge lives here (and mirrored inside the simulated
// diagnostic tools); the reverse-engineering pipeline never reads these
// tables — it must recover them from traffic and screen text, exactly as
// the paper's system does against real cars.
package ecu

import (
	"fmt"
	"math"
	"time"

	"dpreverser/internal/gp"
	"dpreverser/internal/kwp"
	"dpreverser/internal/signal"
	"dpreverser/internal/sim"
	"dpreverser/internal/uds"
)

// Codec converts between physical values and raw wire integers for one UDS
// data identifier. Truth builds the ground-truth decode formula over the
// pipeline's byte variables (X0 = first data byte, X1 = second, ...), used
// only by the experiment harness to score inferred formulas.
type Codec struct {
	// Width is the wire size in bytes (1 or 2).
	Width int
	// Decode maps the raw big-endian integer to the physical value.
	Decode func(raw uint64) float64
	// Encode maps a physical value to the raw integer (clamped to width).
	Encode func(v float64) uint64
	// Expr is the human-readable decode formula over X bytes.
	Expr string
	// Truth builds the decode formula as an expression tree over byte
	// variables.
	Truth func() *gp.Node
}

func clampRaw(v float64, width int) uint64 {
	max := float64(uint64(1)<<(8*width) - 1)
	if v < 0 {
		return 0
	}
	if v > max {
		return uint64(max)
	}
	return uint64(math.Round(v))
}

// rawVar builds the big-endian integer expression 256^k*X0 + ... over byte
// variables.
func rawVar(width int) *gp.Node {
	tree := gp.NewVar(0)
	for i := 1; i < width; i++ {
		tree = gp.NewBinary(gp.OpAdd,
			gp.NewBinary(gp.OpMul, gp.NewConst(256), tree),
			gp.NewVar(i))
	}
	return tree
}

// AffineCodec builds y = scale*raw + offset over a 1- or 2-byte field —
// the dominant shape of real UDS DIDs (paper examples: Y = 0.1X − 40,
// Y = X·1.0, Y = 64.1X0 + 0.241X1).
func AffineCodec(width int, scale, offset float64) Codec {
	if width < 1 || width > 2 {
		panic(fmt.Sprintf("ecu: affine codec width %d unsupported", width))
	}
	expr := fmt.Sprintf("Y = %g*X + %g", scale, offset)
	if width == 2 {
		expr = fmt.Sprintf("Y = %g*(256*X0+X1) + %g", scale, offset)
	}
	return Codec{
		Width:  width,
		Decode: func(raw uint64) float64 { return scale*float64(raw) + offset },
		Encode: func(v float64) uint64 { return clampRaw((v-offset)/scale, width) },
		Expr:   expr,
		Truth: func() *gp.Node {
			return gp.Simplify(gp.NewBinary(gp.OpAdd,
				gp.NewBinary(gp.OpMul, gp.NewConst(scale), rawVar(width)),
				gp.NewConst(offset)))
		},
	}
}

// QuadraticCodec builds y = scale*raw² — a manufacturer-specific nonlinear
// shape that separates GP from the linear baseline.
func QuadraticCodec(width int, scale float64) Codec {
	return Codec{
		Width:  width,
		Decode: func(raw uint64) float64 { r := float64(raw); return scale * r * r },
		Encode: func(v float64) uint64 {
			if v < 0 {
				v = 0
			}
			return clampRaw(math.Sqrt(v/scale), width)
		},
		Expr: fmt.Sprintf("Y = %g*X^2", scale),
		Truth: func() *gp.Node {
			r := rawVar(width)
			return gp.Simplify(gp.NewBinary(gp.OpMul, gp.NewConst(scale),
				gp.NewBinary(gp.OpMul, r, r.Clone())))
		},
	}
}

// SqrtCodec builds y = scale*sqrt(raw) — a second nonlinear shape
// (flow-style sensors).
func SqrtCodec(width int, scale float64) Codec {
	return Codec{
		Width:  width,
		Decode: func(raw uint64) float64 { return scale * math.Sqrt(float64(raw)) },
		Encode: func(v float64) uint64 {
			if v < 0 {
				v = 0
			}
			r := v / scale
			return clampRaw(r*r, width)
		},
		Expr: fmt.Sprintf("Y = %g*sqrt(X)", scale),
		Truth: func() *gp.Node {
			return gp.NewBinary(gp.OpMul, gp.NewConst(scale), gp.NewUnary(gp.OpSqrt, rawVar(width)))
		},
	}
}

// EnumCodec passes raw states through unchanged (door open/closed, gear
// position): no formula exists, which is what puts an ESV in Table 6's
// enum column.
func EnumCodec(width int) Codec {
	return Codec{
		Width:  width,
		Decode: func(raw uint64) float64 { return float64(raw) },
		Encode: func(v float64) uint64 { return clampRaw(v, width) },
		Expr:   "enum",
		Truth:  func() *gp.Node { return rawVar(width) },
	}
}

// DIDSpec binds one UDS data identifier to its signal source and codec.
type DIDSpec struct {
	DID uint16
	// Name is the semantic label the diagnostic tool displays ("Engine
	// speed") — the information §3.4 associates with the DID.
	Name string
	Unit string
	// Enum marks no-formula ESVs.
	Enum bool
	// Codec encodes/decodes the value.
	Codec Codec
	// Signal is the live physical quantity.
	Signal signal.Signal
	// Min and Max bound the displayed value (feeds the OCR range filter).
	Min, Max float64
	// Secured requires security access before reading.
	Secured bool
}

// LocalESVSpec is one ESV inside a KWP measuring block.
type LocalESVSpec struct {
	Name string
	Unit string
	// FType selects the kwp formula-table entry.
	FType byte
	// Scale is the X0 scale constant handed to the formula's encoder.
	Scale byte
	// Enum marks state/bitfield ESVs.
	Enum bool
	// Signal is the live physical quantity.
	Signal   signal.Signal
	Min, Max float64
}

// LocalSpec is one KWP measuring block: a local identifier grouping a set
// of ESVs, read together by service 0x21.
type LocalSpec struct {
	LocalID byte
	// Name labels the block on the tool's UI.
	Name string
	ESVs []LocalESVSpec
}

// ActuatorSpec describes one controllable output and the proprietary ECR
// bytes that drive it.
type ActuatorSpec struct {
	// Name is the semantic label ("Fog light left").
	Name string
	// DID is set for UDS IO control.
	DID uint16
	// LocalID is set for KWP IO control.
	LocalID byte
	// Common marks the KWP common-identifier service (0x2F) instead of
	// the local-identifier service (0x30).
	Common bool
	// CommonID is the 2-byte identifier when Common.
	CommonID uint16
	// State is the short-term-adjustment control-state bytes the tool
	// sends (the proprietary part of the ECR).
	State []byte
}

// ActuationKind classifies actuator lifecycle events.
type ActuationKind int

// Actuation event kinds, mirroring the three-message pattern of §4.5.
const (
	ActFreeze ActuationKind = iota
	ActAdjust
	ActReturn
	ActReset
)

// String implements fmt.Stringer.
func (k ActuationKind) String() string {
	switch k {
	case ActFreeze:
		return "freeze"
	case ActAdjust:
		return "adjust"
	case ActReturn:
		return "return"
	case ActReset:
		return "reset"
	default:
		return "unknown"
	}
}

// ActuationEvent records one physical actuation, the observable the attack
// experiment (§9.3 / Table 13) checks.
type ActuationEvent struct {
	Actuator string
	Kind     ActuationKind
	State    []byte
	At       time.Duration
}

// actuatorState tracks the IO-control lifecycle of one actuator.
type actuatorState struct {
	spec   ActuatorSpec
	frozen bool
	active bool
}

// ECU is one simulated control unit. Exactly one of the UDS/KWP request
// surfaces is active depending on which server the owning vehicle wires to
// its transport, but both can be configured (some real ECUs speak both).
type ECU struct {
	Name  string
	clock *sim.Clock

	dids      map[uint16]*DIDSpec
	didOrder  []uint16
	locals    map[byte]*LocalSpec
	localIDs  []byte
	actuators map[string]*actuatorState // key: identifier key()

	udsServer *uds.Server
	kwpServer *kwp.Server

	dtcs   []uds.DTC
	events []ActuationEvent
	resets int
}

// Config assembles an ECU.
type Config struct {
	Name      string
	Clock     *sim.Clock
	DIDs      []DIDSpec
	Locals    []LocalSpec
	Actuators []ActuatorSpec
	// DTCs are the trouble codes stored at start-up.
	DTCs []uds.DTC
	// Identification is the KWP ECU-identification string (part number,
	// component, coding) returned by service 0x1A.
	Identification string
	// SecuredIO requires UDS security access before IO control.
	SecuredIO bool
}

// New builds an ECU with both protocol servers wired.
func New(cfg Config) *ECU {
	if cfg.Clock == nil {
		cfg.Clock = sim.NewClock(0)
	}
	e := &ECU{
		Name:      cfg.Name,
		clock:     cfg.Clock,
		dids:      map[uint16]*DIDSpec{},
		locals:    map[byte]*LocalSpec{},
		actuators: map[string]*actuatorState{},
	}
	for i := range cfg.DIDs {
		spec := cfg.DIDs[i]
		e.dids[spec.DID] = &spec
		e.didOrder = append(e.didOrder, spec.DID)
	}
	for i := range cfg.Locals {
		spec := cfg.Locals[i]
		e.locals[spec.LocalID] = &spec
		e.localIDs = append(e.localIDs, spec.LocalID)
	}
	for i := range cfg.Actuators {
		spec := cfg.Actuators[i]
		e.actuators[actKey(spec)] = &actuatorState{spec: spec}
	}

	e.dtcs = append(e.dtcs, cfg.DTCs...)

	e.udsServer = uds.NewServer()
	e.udsServer.ReadData = e.readDID
	e.udsServer.IOControl = e.udsIOControl
	e.udsServer.Reset = func(byte) { e.resets++; e.record(e.Name, ActReset, nil) }
	e.udsServer.ReadDTCs = e.readDTCs
	e.udsServer.ClearDTCs = e.clearDTCs
	if cfg.SecuredIO {
		e.udsServer.SecuredServices = map[byte]bool{uds.SIDIOControlByIdentifier: true}
	}

	e.kwpServer = kwp.NewServer()
	e.kwpServer.ReadLocal = e.readLocal
	e.kwpServer.IOControl = e.kwpIOControl
	if cfg.Identification != "" {
		ident := cfg.Identification
		e.kwpServer.Identification = func(option byte) string {
			if option == kwp.IdentOptionECUIdent {
				return ident
			}
			return ""
		}
	}
	return e
}

func actKey(spec ActuatorSpec) string {
	if spec.DID != 0 {
		return fmt.Sprintf("did:%04X", spec.DID)
	}
	if spec.Common {
		return fmt.Sprintf("cid:%04X", spec.CommonID)
	}
	return fmt.Sprintf("lid:%02X", spec.LocalID)
}

// HandleUDS processes one complete UDS request payload.
func (e *ECU) HandleUDS(req []byte) []byte { return e.udsServer.Handle(req) }

// HandleKWP processes one complete KWP request payload.
func (e *ECU) HandleKWP(req []byte) []byte { return e.kwpServer.Handle(req) }

// UDSServer exposes the underlying session state machine (tests and the
// vehicle wiring use it).
func (e *ECU) UDSServer() *uds.Server { return e.udsServer }

// DIDs lists the configured UDS data identifiers in declaration order.
func (e *ECU) DIDs() []uint16 { return append([]uint16(nil), e.didOrder...) }

// DIDSpecFor returns the spec for one DID (the diagnostic tool's embedded
// database is built from these).
func (e *ECU) DIDSpecFor(did uint16) (DIDSpec, bool) {
	s, ok := e.dids[did]
	if !ok {
		return DIDSpec{}, false
	}
	return *s, true
}

// Locals lists the configured KWP local identifiers in declaration order.
func (e *ECU) Locals() []byte { return append([]byte(nil), e.localIDs...) }

// LocalSpecFor returns one measuring block's spec.
func (e *ECU) LocalSpecFor(id byte) (LocalSpec, bool) {
	s, ok := e.locals[id]
	if !ok {
		return LocalSpec{}, false
	}
	return *s, true
}

// Actuators lists actuator specs in arbitrary-but-stable key order.
func (e *ECU) Actuators() []ActuatorSpec {
	out := make([]ActuatorSpec, 0, len(e.actuators))
	for _, st := range e.actuators {
		out = append(out, st.spec)
	}
	// Stable order by key.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && actKey(out[j-1]) > actKey(out[j]); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Events returns the actuation log.
func (e *ECU) Events() []ActuationEvent {
	return append([]ActuationEvent(nil), e.events...)
}

// Resets reports how many ECUReset requests were executed.
func (e *ECU) Resets() int { return e.resets }

func (e *ECU) record(name string, kind ActuationKind, state []byte) {
	e.events = append(e.events, ActuationEvent{
		Actuator: name,
		Kind:     kind,
		State:    append([]byte(nil), state...),
		At:       e.clock.Now(),
	})
}

// readDID answers UDS ReadDataByIdentifier for one DID.
func (e *ECU) readDID(did uint16) ([]byte, bool) {
	spec, ok := e.dids[did]
	if !ok {
		return nil, false
	}
	if spec.Secured && !e.udsServer.Unlocked() {
		return nil, false
	}
	raw := spec.Codec.Encode(spec.Signal.Value(e.clock.Now()))
	out := make([]byte, spec.Codec.Width)
	for i := spec.Codec.Width - 1; i >= 0; i-- {
		out[i] = byte(raw)
		raw >>= 8
	}
	return out, true
}

// readLocal answers KWP readDataByLocalIdentifier for one measuring block.
func (e *ECU) readLocal(localID byte) ([]kwp.ESV, bool) {
	spec, ok := e.locals[localID]
	if !ok {
		return nil, false
	}
	now := e.clock.Now()
	esvs := make([]kwp.ESV, 0, len(spec.ESVs))
	for _, es := range spec.ESVs {
		ft, ok := kwp.LookupFormula(es.FType)
		if !ok {
			return nil, false
		}
		x0, x1 := ft.Encode(es.Scale, es.Signal.Value(now))
		esvs = append(esvs, kwp.ESV{FType: es.FType, X0: x0, X1: x1})
	}
	return esvs, true
}

// udsIOControl implements the three-message actuator protocol of §4.5.
func (e *ECU) udsIOControl(req uds.IOControlRequest) ([]byte, byte) {
	st, ok := e.actuators[fmt.Sprintf("did:%04X", req.DID)]
	if !ok {
		return nil, uds.NRCRequestOutOfRange
	}
	switch req.Param {
	case uds.IOFreezeCurrentState:
		st.frozen = true
		e.record(st.spec.Name, ActFreeze, nil)
		return []byte{0x00}, 0
	case uds.IOShortTermAdjustment:
		if !st.frozen {
			return nil, uds.NRCRequestSequenceError
		}
		st.active = true
		e.record(st.spec.Name, ActAdjust, req.State)
		return append([]byte{0x01}, req.State...), 0
	case uds.IOReturnControlToECU:
		st.frozen = false
		st.active = false
		e.record(st.spec.Name, ActReturn, nil)
		return []byte{0x00}, 0
	case uds.IOResetToDefault:
		st.frozen = false
		st.active = false
		e.record(st.spec.Name, ActReset, nil)
		return []byte{0x00}, 0
	default:
		return nil, uds.NRCSubFunctionNotSupported
	}
}

// kwpIOControl implements KWP actuator control: the ECR's first byte plays
// the role of the IO control parameter.
func (e *ECU) kwpIOControl(req kwp.IOControlRequest) ([]byte, byte) {
	var key string
	if req.Common {
		key = fmt.Sprintf("cid:%04X", req.CommonID)
	} else {
		key = fmt.Sprintf("lid:%02X", req.LocalID)
	}
	st, ok := e.actuators[key]
	if !ok {
		return nil, kwp.RCRequestOutOfRange
	}
	if len(req.ECR) == 0 {
		return nil, kwp.RCIncorrectMessageLength
	}
	switch req.ECR[0] {
	case uds.IOFreezeCurrentState:
		st.frozen = true
		e.record(st.spec.Name, ActFreeze, nil)
		return []byte{0x00}, 0
	case uds.IOShortTermAdjustment:
		st.active = true
		e.record(st.spec.Name, ActAdjust, req.ECR[1:])
		return append([]byte{0x01}, req.ECR[1:]...), 0
	case uds.IOReturnControlToECU:
		st.frozen = false
		st.active = false
		e.record(st.spec.Name, ActReturn, nil)
		return []byte{0x00}, 0
	default:
		// Legacy single-shot controls ("30 15 00 40 00"): treat any other
		// leading byte as a direct adjustment.
		st.active = true
		e.record(st.spec.Name, ActAdjust, req.ECR)
		return append([]byte{0x01}, req.ECR...), 0
	}
}

// readDTCs answers ReadDTCInformation with the stored codes matching the
// status mask.
func (e *ECU) readDTCs(statusMask byte) []uds.DTC {
	var out []uds.DTC
	for _, d := range e.dtcs {
		if statusMask == 0 || d.Status&statusMask != 0 {
			out = append(out, d)
		}
	}
	return out
}

// clearDTCs erases stored codes; group 0xFFFFFF clears everything, any
// other group clears codes whose high byte matches the group's high byte.
func (e *ECU) clearDTCs(group uint32) bool {
	if group == 0xFFFFFF {
		e.dtcs = nil
		return true
	}
	kept := e.dtcs[:0]
	for _, d := range e.dtcs {
		if d.Code>>16 != group>>16 {
			kept = append(kept, d)
		}
	}
	e.dtcs = kept
	return true
}

// DTCs returns the currently stored trouble codes.
func (e *ECU) DTCs() []uds.DTC { return append([]uds.DTC(nil), e.dtcs...) }

// ActuatorActive reports whether the named actuator is currently driven.
func (e *ECU) ActuatorActive(name string) bool {
	for _, st := range e.actuators {
		if st.spec.Name == name {
			return st.active
		}
	}
	return false
}
