package ecu

import (
	"bytes"
	"math"
	"testing"
	"time"

	"dpreverser/internal/gp"
	"dpreverser/internal/kwp"
	"dpreverser/internal/signal"
	"dpreverser/internal/sim"
	"dpreverser/internal/uds"
)

func TestAffineCodecRoundTrip(t *testing.T) {
	c := AffineCodec(1, 0.1, -40) // Y = 0.1X - 40, the Carly DID 0xF43C shape
	raw := c.Encode(-15.0)
	if got := c.Decode(raw); math.Abs(got+15.0) > 0.06 {
		t.Fatalf("round trip: %v", got)
	}
	// Clamping.
	if c.Encode(-1000) != 0 {
		t.Fatal("below-range not clamped to 0")
	}
	if c.Encode(1e9) != 255 {
		t.Fatal("above-range not clamped to max")
	}
}

func TestAffineCodecTwoByte(t *testing.T) {
	c := AffineCodec(2, 0.25, 0) // OBD-style RPM
	raw := c.Encode(1712.25)
	if got := c.Decode(raw); math.Abs(got-1712.25) > 0.13 {
		t.Fatalf("round trip: %v", got)
	}
	if raw > 0xFFFF {
		t.Fatalf("raw %d exceeds 2 bytes", raw)
	}
}

func TestCodecTruthMatchesDecode(t *testing.T) {
	codecs := map[string]Codec{
		"affine1":   AffineCodec(1, 0.5, -10),
		"affine2":   AffineCodec(2, 0.1, 7),
		"quadratic": QuadraticCodec(1, 0.02),
		"sqrt":      SqrtCodec(2, 1.5),
		"enum":      EnumCodec(1),
	}
	for name, c := range codecs {
		t.Run(name, func(t *testing.T) {
			truth := c.Truth()
			for _, raw := range []uint64{0, 1, 7, 100, 200, 255} {
				if c.Width == 2 {
					raw *= 173 // spread over two bytes
				}
				bytes := make([]float64, c.Width)
				r := raw
				for i := c.Width - 1; i >= 0; i-- {
					bytes[i] = float64(r & 0xFF)
					r >>= 8
				}
				want := c.Decode(raw)
				if got := truth.Eval(bytes); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("truth(%d) = %v, decode = %v (tree %q)", raw, got, want, truth)
				}
			}
		})
	}
}

func TestAffineCodecBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width 3 accepted")
		}
	}()
	AffineCodec(3, 1, 0)
}

func newTestECU(clock *sim.Clock) *ECU {
	return New(Config{
		Name:  "Engine",
		Clock: clock,
		DIDs: []DIDSpec{
			{DID: 0xF40D, Name: "Vehicle speed", Unit: "km/h",
				Codec: AffineCodec(1, 1, 0), Signal: signal.Constant(33), Min: 0, Max: 255},
			{DID: 0xF44D, Name: "Engine speed", Unit: "rpm",
				Codec: AffineCodec(2, 0.25, 0), Signal: signal.Constant(1712), Min: 0, Max: 8000},
			{DID: 0xD100, Name: "Door state", Unit: "", Enum: true,
				Codec: EnumCodec(1), Signal: signal.Constant(1), Min: 0, Max: 1},
			{DID: 0xDEAD, Name: "Secured value", Unit: "",
				Codec: AffineCodec(1, 1, 0), Signal: signal.Constant(9), Secured: true},
		},
		Locals: []LocalSpec{
			{LocalID: 0x07, Name: "Engine data", ESVs: []LocalESVSpec{
				{Name: "Engine speed", Unit: "rpm", FType: 0x01, Scale: 0xF1,
					Signal: signal.Constant(771.2), Min: 0, Max: 8000},
				{Name: "Coolant temperature", Unit: "°C", FType: 0x05, Scale: 10,
					Signal: signal.Constant(88), Min: -40, Max: 150},
			}},
		},
		Actuators: []ActuatorSpec{
			{Name: "Fog light left", DID: 0x0950, State: []byte{0x05, 0x01, 0x00, 0x00}},
			{Name: "Door lock", LocalID: 0x15, State: []byte{0x00, 0x40, 0x00}},
		},
	})
}

func TestECUReadDIDSingle(t *testing.T) {
	e := newTestECU(nil)
	resp := e.HandleUDS([]byte{0x22, 0xF4, 0x0D})
	if !bytes.Equal(resp, []byte{0x62, 0xF4, 0x0D, 33}) {
		t.Fatalf("resp = % X", resp)
	}
}

func TestECUReadDIDTwoByte(t *testing.T) {
	e := newTestECU(nil)
	resp := e.HandleUDS([]byte{0x22, 0xF4, 0x4D})
	if len(resp) != 5 {
		t.Fatalf("resp = % X", resp)
	}
	raw := uint64(resp[3])<<8 | uint64(resp[4])
	if got := 0.25 * float64(raw); math.Abs(got-1712) > 0.2 {
		t.Fatalf("decoded rpm = %v", got)
	}
}

func TestECUReadDIDUnknown(t *testing.T) {
	e := newTestECU(nil)
	resp := e.HandleUDS([]byte{0x22, 0xAB, 0xCD})
	if _, nrc, ok := uds.ParseNegativeResponse(resp); !ok || nrc != uds.NRCRequestOutOfRange {
		t.Fatalf("resp = % X", resp)
	}
}

func TestECUSecuredDID(t *testing.T) {
	e := newTestECU(nil)
	resp := e.HandleUDS([]byte{0x22, 0xDE, 0xAD})
	if _, _, ok := uds.ParseNegativeResponse(resp); !ok {
		t.Fatalf("secured DID served while locked: % X", resp)
	}
	// Unlock and retry.
	seedResp := e.HandleUDS([]byte{0x27, 0x01})
	key := uds.DefaultSeedToKey(seedResp[2:])
	e.HandleUDS(append([]byte{0x27, 0x02}, key...))
	resp = e.HandleUDS([]byte{0x22, 0xDE, 0xAD})
	if !bytes.Equal(resp, []byte{0x62, 0xDE, 0xAD, 9}) {
		t.Fatalf("unlocked read = % X", resp)
	}
}

func TestECUSignalTracksClock(t *testing.T) {
	clock := sim.NewClock(0)
	e := New(Config{
		Name:  "Engine",
		Clock: clock,
		DIDs: []DIDSpec{
			{DID: 0x1000, Name: "Ramp", Codec: AffineCodec(1, 1, 0),
				Signal: signal.Ramp{Start: 0, PerSecond: 10, Min: 0, Max: 200}},
		},
	})
	r1 := e.HandleUDS([]byte{0x22, 0x10, 0x00})
	clock.Advance(5 * time.Second)
	r2 := e.HandleUDS([]byte{0x22, 0x10, 0x00})
	if r1[3] != 0 || r2[3] != 50 {
		t.Fatalf("ramp reads = %d, %d; want 0, 50", r1[3], r2[3])
	}
}

func TestECUReadLocalKWP(t *testing.T) {
	e := newTestECU(nil)
	resp := e.HandleKWP([]byte{0x21, 0x07})
	localID, esvs, err := kwp.ParseReadResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if localID != 0x07 || len(esvs) != 2 {
		t.Fatalf("resp = % X", resp)
	}
	rpm, ok := esvs[0].Decode()
	if !ok || math.Abs(rpm-771.2) > 50 {
		t.Fatalf("decoded rpm = %v (esv %+v)", rpm, esvs[0])
	}
	temp, ok := esvs[1].Decode()
	if !ok || math.Abs(temp-88) > 1 {
		t.Fatalf("decoded temp = %v", temp)
	}
}

func TestECUUDSIOControlLifecycle(t *testing.T) {
	e := newTestECU(nil)
	e.HandleUDS([]byte{0x10, 0x03}) // extended session

	// Adjustment before freeze is a sequence error.
	resp := e.HandleUDS(uds.BuildIOControlRequest(uds.IOControlRequest{
		DID: 0x0950, Param: uds.IOShortTermAdjustment, State: []byte{0x05, 0x01, 0x00, 0x00}}))
	if _, nrc, ok := uds.ParseNegativeResponse(resp); !ok || nrc != uds.NRCRequestSequenceError {
		t.Fatalf("adjust before freeze: % X", resp)
	}

	// The paper's three-message pattern.
	resp = e.HandleUDS([]byte{0x2F, 0x09, 0x50, 0x02})
	if !uds.IsPositiveResponse(resp, uds.SIDIOControlByIdentifier) {
		t.Fatalf("freeze: % X", resp)
	}
	resp = e.HandleUDS([]byte{0x2F, 0x09, 0x50, 0x03, 0x05, 0x01, 0x00, 0x00})
	if !uds.IsPositiveResponse(resp, uds.SIDIOControlByIdentifier) {
		t.Fatalf("adjust: % X", resp)
	}
	if !e.ActuatorActive("Fog light left") {
		t.Fatal("actuator not active after adjustment")
	}
	resp = e.HandleUDS([]byte{0x2F, 0x09, 0x50, 0x00})
	if !uds.IsPositiveResponse(resp, uds.SIDIOControlByIdentifier) {
		t.Fatalf("return: % X", resp)
	}
	if e.ActuatorActive("Fog light left") {
		t.Fatal("actuator still active after return control")
	}

	events := e.Events()
	if len(events) != 3 {
		t.Fatalf("events = %+v", events)
	}
	kinds := []ActuationKind{ActFreeze, ActAdjust, ActReturn}
	for i, k := range kinds {
		if events[i].Kind != k {
			t.Fatalf("event %d = %v, want %v", i, events[i].Kind, k)
		}
	}
	if !bytes.Equal(events[1].State, []byte{0x05, 0x01, 0x00, 0x00}) {
		t.Fatalf("adjust state = % X", events[1].State)
	}
}

func TestECUUDSIOControlUnknownDID(t *testing.T) {
	e := newTestECU(nil)
	e.HandleUDS([]byte{0x10, 0x03})
	resp := e.HandleUDS([]byte{0x2F, 0xAA, 0xBB, 0x02})
	if _, nrc, ok := uds.ParseNegativeResponse(resp); !ok || nrc != uds.NRCRequestOutOfRange {
		t.Fatalf("resp = % X", resp)
	}
}

func TestECUKWPIOControlDirect(t *testing.T) {
	// Paper example "30 15 00 40 00": direct control, first ECR byte 0x00
	// is return-control in UDS terms, but the 3-byte legacy form acts as a
	// one-shot; our ECU treats leading 0x00 as return and others as
	// adjust. Use the documented freeze/adjust pattern.
	e := newTestECU(nil)
	resp := e.HandleKWP([]byte{0x30, 0x15, 0x03, 0x40, 0x00})
	if !kwp.IsPositiveResponse(resp, kwp.SIDIOControlByLocalIdentifier) {
		t.Fatalf("adjust: % X", resp)
	}
	if !e.ActuatorActive("Door lock") {
		t.Fatal("actuator not active")
	}
	resp = e.HandleKWP([]byte{0x30, 0x15, 0x00})
	if !kwp.IsPositiveResponse(resp, kwp.SIDIOControlByLocalIdentifier) {
		t.Fatalf("return: % X", resp)
	}
	if e.ActuatorActive("Door lock") {
		t.Fatal("actuator still active")
	}
}

func TestECUResetCounting(t *testing.T) {
	e := newTestECU(nil)
	e.HandleUDS([]byte{0x10, 0x03})
	e.HandleUDS([]byte{0x11, 0x01})
	if e.Resets() != 1 {
		t.Fatalf("Resets = %d", e.Resets())
	}
}

func TestECUInventoryAccessors(t *testing.T) {
	e := newTestECU(nil)
	if len(e.DIDs()) != 4 {
		t.Fatalf("DIDs = %v", e.DIDs())
	}
	spec, ok := e.DIDSpecFor(0xF40D)
	if !ok || spec.Name != "Vehicle speed" {
		t.Fatalf("spec = %+v, %v", spec, ok)
	}
	if _, ok := e.DIDSpecFor(0x9999); ok {
		t.Fatal("unknown DID found")
	}
	if len(e.Locals()) != 1 || e.Locals()[0] != 0x07 {
		t.Fatalf("Locals = %v", e.Locals())
	}
	ls, ok := e.LocalSpecFor(0x07)
	if !ok || len(ls.ESVs) != 2 {
		t.Fatalf("local spec = %+v", ls)
	}
	acts := e.Actuators()
	if len(acts) != 2 {
		t.Fatalf("Actuators = %+v", acts)
	}
}

func TestEnumCodecIdentity(t *testing.T) {
	c := EnumCodec(1)
	for _, v := range []uint64{0, 1, 3, 255} {
		if c.Decode(c.Encode(float64(v))) != float64(v) {
			t.Fatalf("enum round trip failed for %d", v)
		}
	}
	truth := c.Truth()
	if truth.Eval([]float64{7}) != 7 {
		t.Fatalf("enum truth = %q", truth)
	}
}

func TestActuationKindString(t *testing.T) {
	for k, want := range map[ActuationKind]string{
		ActFreeze: "freeze", ActAdjust: "adjust", ActReturn: "return",
		ActReset: "reset", ActuationKind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", k, got)
		}
	}
}

// The codec Truth trees must be exactly what the experiments compare GP
// output against — affine over bytes for 2-byte codecs.
func TestTwoByteTruthIsLinearInBytes(t *testing.T) {
	c := AffineCodec(2, 0.25, 0)
	truth := c.Truth()
	// 0.25*(256*X0 + X1) = 64*X0 + 0.25*X1.
	got := truth.Eval([]float64{0x1A, 0xF8})
	want := 64*float64(0x1A) + 0.25*float64(0xF8)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("truth = %v, want %v", got, want)
	}
	vars := truth.Vars()
	if !vars[0] || !vars[1] {
		t.Fatalf("truth %q does not reference both bytes", truth)
	}
	// The truth must be expressible to the comparison harness: MAE against
	// itself on any dataset is zero.
	d := &gp.Dataset{X: [][]float64{{0x1A, 0xF8}}, Y: []float64{want}}
	if gp.MAE(truth, d) > 1e-9 {
		t.Fatal("truth does not fit its own dataset")
	}
}
