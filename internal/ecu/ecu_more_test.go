package ecu

import (
	"bytes"
	"math"
	"testing"

	"dpreverser/internal/kwp"
	"dpreverser/internal/signal"
	"dpreverser/internal/uds"
)

func TestCodecEncodeClampingNonlinear(t *testing.T) {
	q := QuadraticCodec(1, 0.0017)
	if q.Encode(-5) != 0 {
		t.Fatal("negative input not clamped")
	}
	if q.Encode(1e9) != 255 {
		t.Fatal("huge input not clamped to byte")
	}
	s := SqrtCodec(2, 0.75)
	if s.Encode(-1) != 0 {
		t.Fatal("sqrt negative not clamped")
	}
	if s.Encode(1e9) != 0xFFFF {
		t.Fatal("sqrt huge not clamped")
	}
	// Round trips inside range.
	for _, v := range []float64{5, 40, 90} {
		if got := q.Decode(q.Encode(v)); math.Abs(got-v) > 1 {
			t.Fatalf("quadratic round trip %v -> %v", v, got)
		}
	}
	for _, v := range []float64{10, 80, 150} {
		if got := s.Decode(s.Encode(v)); math.Abs(got-v) > 0.5 {
			t.Fatalf("sqrt round trip %v -> %v", v, got)
		}
	}
}

func TestECUDTCLifecycle(t *testing.T) {
	e := New(Config{
		Name: "Engine",
		DTCs: []uds.DTC{
			{Code: 0x030100, Status: uds.DTCStatusConfirmed},
			{Code: 0x171300, Status: uds.DTCStatusPending},
			{Code: 0x442A00, Status: uds.DTCStatusConfirmed},
		},
	})
	if len(e.DTCs()) != 3 {
		t.Fatalf("DTCs = %v", e.DTCs())
	}
	resp := e.HandleUDS(uds.BuildReadDTCRequest(uds.DTCStatusConfirmed))
	_, dtcs, err := uds.ParseReadDTCResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(dtcs) != 2 {
		t.Fatalf("confirmed DTCs = %v", dtcs)
	}
	// Group clear: erase only the 0x03xxxx group.
	resp = e.HandleUDS(uds.BuildClearDTCRequest(0x030000))
	if !uds.IsPositiveResponse(resp, uds.SIDClearDiagnosticInfo) {
		t.Fatalf("group clear resp = % X", resp)
	}
	if got := e.DTCs(); len(got) != 2 {
		t.Fatalf("after group clear: %v", got)
	}
	// Clear all.
	e.HandleUDS(uds.BuildClearDTCRequest(0xFFFFFF))
	if got := e.DTCs(); len(got) != 0 {
		t.Fatalf("after full clear: %v", got)
	}
	// Status mask 0 matches everything remaining (nothing).
	if got := e.readDTCs(0); len(got) != 0 {
		t.Fatalf("mask 0 = %v", got)
	}
}

func TestECUUDSServerAccessor(t *testing.T) {
	e := newTestECU(nil)
	if e.UDSServer() == nil || e.UDSServer().Session() != uds.SessionDefault {
		t.Fatal("UDSServer accessor broken")
	}
}

func TestECUKWPCommonIdentifierActuator(t *testing.T) {
	e := New(Config{
		Name: "Body",
		Actuators: []ActuatorSpec{
			{Name: "Central lock", Common: true, CommonID: 0xB003, State: []byte{0x03}},
		},
	})
	// Paper's Kia example: "04 2F B0 03" — IO control by common identifier.
	resp := e.HandleKWP([]byte{0x2F, 0xB0, 0x03, 0x03, 0x01})
	if !kwp.IsPositiveResponse(resp, kwp.SIDIOControlByCommonIdentifier) {
		t.Fatalf("common-id control resp = % X", resp)
	}
	if !e.ActuatorActive("Central lock") {
		t.Fatal("actuator not active")
	}
	resp = e.HandleKWP([]byte{0x2F, 0xB0, 0x03, 0x00})
	if !kwp.IsPositiveResponse(resp, kwp.SIDIOControlByCommonIdentifier) {
		t.Fatalf("return resp = % X", resp)
	}
	if e.ActuatorActive("Central lock") {
		t.Fatal("actuator still active")
	}
	// Unknown common id.
	resp = e.HandleKWP([]byte{0x2F, 0xAA, 0xAA, 0x03})
	if _, rc, ok := kwp.ParseNegativeResponse(resp); !ok || rc != kwp.RCRequestOutOfRange {
		t.Fatalf("unknown common id resp = % X", resp)
	}
}

func TestECUKWPIOControlFreezePattern(t *testing.T) {
	e := New(Config{
		Name:      "Body",
		Actuators: []ActuatorSpec{{Name: "Wiper", LocalID: 0x1C, State: []byte{0x01}}},
	})
	// Freeze (ECR byte 0x02), then adjust, then return.
	resp := e.HandleKWP([]byte{0x30, 0x1C, 0x02})
	if !kwp.IsPositiveResponse(resp, kwp.SIDIOControlByLocalIdentifier) {
		t.Fatalf("freeze resp = % X", resp)
	}
	e.HandleKWP([]byte{0x30, 0x1C, 0x03, 0x01})
	if !e.ActuatorActive("Wiper") {
		t.Fatal("wiper not active")
	}
	events := e.Events()
	if len(events) != 2 || events[0].Kind != ActFreeze || events[1].Kind != ActAdjust {
		t.Fatalf("events = %+v", events)
	}
	// Empty ECR is a length error.
	resp = e.HandleKWP([]byte{0x30, 0x1C})
	if _, rc, ok := kwp.ParseNegativeResponse(resp); !ok || rc != kwp.RCIncorrectMessageLength {
		t.Fatalf("empty ECR resp = % X", resp)
	}
}

func TestECUUDSIOControlResetToDefault(t *testing.T) {
	e := newTestECU(nil)
	e.HandleUDS([]byte{0x10, 0x03})
	e.HandleUDS([]byte{0x2F, 0x09, 0x50, 0x02})
	e.HandleUDS([]byte{0x2F, 0x09, 0x50, 0x03, 0x01})
	resp := e.HandleUDS([]byte{0x2F, 0x09, 0x50, 0x01}) // resetToDefault
	if !uds.IsPositiveResponse(resp, uds.SIDIOControlByIdentifier) {
		t.Fatalf("reset resp = % X", resp)
	}
	if e.ActuatorActive("Fog light left") {
		t.Fatal("actuator active after resetToDefault")
	}
	// Unknown IO parameter.
	e.HandleUDS([]byte{0x2F, 0x09, 0x50, 0x02})
	resp = e.HandleUDS([]byte{0x2F, 0x09, 0x50, 0x77})
	if _, nrc, ok := uds.ParseNegativeResponse(resp); !ok || nrc != uds.NRCSubFunctionNotSupported {
		t.Fatalf("unknown param resp = % X", resp)
	}
}

func TestECUReadLocalUnknownFType(t *testing.T) {
	e := New(Config{
		Name: "Engine",
		Locals: []LocalSpec{{LocalID: 0x05, Name: "Broken", ESVs: []LocalESVSpec{
			{Name: "Bad", FType: 0xEE, Signal: signal.Constant(1)},
		}}},
	})
	resp := e.HandleKWP([]byte{0x21, 0x05})
	if _, rc, ok := kwp.ParseNegativeResponse(resp); !ok || rc != kwp.RCRequestOutOfRange {
		t.Fatalf("unknown ftype resp = % X", resp)
	}
}

func TestECUActuatorActiveUnknownName(t *testing.T) {
	e := newTestECU(nil)
	if e.ActuatorActive("nonexistent") {
		t.Fatal("unknown actuator reported active")
	}
}

func TestECULocalSpecForMissing(t *testing.T) {
	e := newTestECU(nil)
	if _, ok := e.LocalSpecFor(0x99); ok {
		t.Fatal("missing local spec found")
	}
}

func TestECUEventStateIsCopied(t *testing.T) {
	e := newTestECU(nil)
	e.HandleUDS([]byte{0x10, 0x03})
	state := []byte{0x05, 0x01}
	e.HandleUDS([]byte{0x2F, 0x09, 0x50, 0x02})
	e.HandleUDS(append([]byte{0x2F, 0x09, 0x50, 0x03}, state...))
	state[0] = 0xFF
	events := e.Events()
	if !bytes.Equal(events[1].State, []byte{0x05, 0x01}) {
		t.Fatal("event state aliases caller buffer")
	}
}
