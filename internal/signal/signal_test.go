package signal

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConstant(t *testing.T) {
	s := Constant(42.5)
	for _, at := range []time.Duration{0, time.Second, time.Hour} {
		if got := s.Value(at); got != 42.5 {
			t.Fatalf("Constant.Value(%v) = %v, want 42.5", at, got)
		}
	}
}

func TestRampLinearAndClamped(t *testing.T) {
	r := Ramp{Start: 10, PerSecond: 2, Min: 0, Max: 20}
	if got := r.Value(0); got != 10 {
		t.Fatalf("Value(0) = %v, want 10", got)
	}
	if got := r.Value(3 * time.Second); got != 16 {
		t.Fatalf("Value(3s) = %v, want 16", got)
	}
	if got := r.Value(time.Hour); got != 20 {
		t.Fatalf("Value(1h) = %v, want clamp at 20", got)
	}
}

func TestRampUnclampedWhenBoundsUnset(t *testing.T) {
	r := Ramp{Start: 0, PerSecond: 1}
	if got := r.Value(100 * time.Second); got != 100 {
		t.Fatalf("unbounded ramp Value(100s) = %v, want 100", got)
	}
}

func TestSineRangeAndPeriod(t *testing.T) {
	s := Sine{Center: 50, Amplitude: 10, Period: 4 * time.Second}
	if got := s.Value(0); math.Abs(got-50) > 1e-9 {
		t.Fatalf("Value(0) = %v, want 50", got)
	}
	if got := s.Value(time.Second); math.Abs(got-60) > 1e-9 {
		t.Fatalf("Value(T/4) = %v, want 60", got)
	}
	if got := s.Value(3 * time.Second); math.Abs(got-40) > 1e-9 {
		t.Fatalf("Value(3T/4) = %v, want 40", got)
	}
}

func TestSineZeroPeriodIsCenter(t *testing.T) {
	s := Sine{Center: 5, Amplitude: 100, Period: 0}
	if got := s.Value(time.Second); got != 5 {
		t.Fatalf("zero-period sine = %v, want center 5", got)
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	a := NewRandomWalk(7, 50, 5, 0, 100, 100*time.Millisecond)
	b := NewRandomWalk(7, 50, 5, 0, 100, 100*time.Millisecond)
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 37 * time.Millisecond
		if a.Value(at) != b.Value(at) {
			t.Fatalf("walks with same seed diverge at %v", at)
		}
	}
}

func TestRandomWalkRereadSameInstant(t *testing.T) {
	w := NewRandomWalk(3, 10, 1, 0, 20, 50*time.Millisecond)
	at := 2 * time.Second
	first := w.Value(at)
	w.Value(10 * time.Second) // advance cache past at
	if got := w.Value(at); got != first {
		t.Fatalf("re-read Value(%v) = %v, want %v (deterministic replay)", at, got, first)
	}
}

func TestRandomWalkBounds(t *testing.T) {
	w := NewRandomWalk(11, 5, 50, 0, 10, 10*time.Millisecond)
	for i := 0; i < 1000; i++ {
		v := w.Value(time.Duration(i) * 10 * time.Millisecond)
		if v < 0 || v > 10 {
			t.Fatalf("walk escaped bounds: %v", v)
		}
	}
}

func TestRandomWalkNegativeTimeClampedToZero(t *testing.T) {
	w := NewRandomWalk(1, 5, 1, 0, 10, time.Second)
	if got, want := w.Value(-time.Hour), w.Value(0); got != want {
		t.Fatalf("Value(-1h) = %v, want Value(0) = %v", got, want)
	}
}

func TestRandomWalkConstructorValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero step":      func() { NewRandomWalk(1, 0, 1, 0, 10, 0) },
		"inverted range": func() { NewRandomWalk(1, 0, 1, 10, 0, time.Second) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: constructor did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestQuantized(t *testing.T) {
	q := Quantized{S: Constant(7.3), Step: 0.5}
	if got := q.Value(0); got != 7.5 {
		t.Fatalf("Quantized = %v, want 7.5", got)
	}
	q = Quantized{S: Constant(7.3), Step: 0}
	if got := q.Value(0); got != 7.3 {
		t.Fatalf("Step=0 should pass through, got %v", got)
	}
}

func TestSum(t *testing.T) {
	s := Sum{Constant(1), Constant(2), Ramp{PerSecond: 1}}
	if got := s.Value(3 * time.Second); got != 6 {
		t.Fatalf("Sum = %v, want 6", got)
	}
	if got := (Sum{}).Value(0); got != 0 {
		t.Fatalf("empty Sum = %v, want 0", got)
	}
}

func TestSwitchedCycles(t *testing.T) {
	s := Switched{States: []float64{0, 1, 2}, Dwell: time.Second}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0}, {999 * time.Millisecond, 0}, {time.Second, 1},
		{2500 * time.Millisecond, 2}, {3 * time.Second, 0},
	}
	for _, c := range cases {
		if got := s.Value(c.at); got != c.want {
			t.Fatalf("Switched.Value(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestSwitchedDegenerate(t *testing.T) {
	if got := (Switched{}).Value(time.Second); got != 0 {
		t.Fatalf("empty Switched = %v, want 0", got)
	}
	s := Switched{States: []float64{9}, Dwell: 0}
	if got := s.Value(time.Hour); got != 9 {
		t.Fatalf("zero-dwell Switched = %v, want 9", got)
	}
}

// Property: every library signal stays within its physical envelope over a
// long horizon.
func TestLibrarySignalEnvelopes(t *testing.T) {
	cases := []struct {
		name     string
		s        Signal
		min, max float64
	}{
		{"EngineRPM", EngineRPM(1), 700, 4500},
		{"VehicleSpeed", VehicleSpeed(2), 0, 130},
		{"CoolantTemp", CoolantTemp(3), 15, 96},
		{"ThrottlePosition", ThrottlePosition(4), 0, 100},
		{"FuelLevel", FuelLevel(5), 3, 102},
		{"ManifoldPressure", ManifoldPressure(6), 15, 105},
		{"BatteryVoltage", BatteryVoltage(7), 12.5, 15},
		{"SteeringAngle", SteeringAngle(8), -540, 540},
		{"LateralAcceleration", LateralAcceleration(9), -4, 4},
		{"TorqueAssistance", TorqueAssistance(10), -0.255, 0.255},
		{"BrakePressure", BrakePressure(11), 0, 120},
		{"AcceleratorPosition", AcceleratorPosition(12), 0, 100},
		{"OilTemperature", OilTemperature(13), 15, 113},
		{"FuelInjectionQuantity", FuelInjectionQuantity(14), 2, 60},
		{"DoorState", DoorState(), 0, 1},
		{"GearPosition", GearPosition(), 0, 3},
		{"LampState", LampState(), 0, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for i := 0; i < 600; i++ {
				at := time.Duration(i) * 100 * time.Millisecond
				v := c.s.Value(at)
				if v < c.min || v > c.max {
					t.Fatalf("at %v value %v escapes [%v, %v]", at, v, c.min, c.max)
				}
			}
		})
	}
}

// Property: library formula-bearing signals actually vary — a frozen signal
// would degrade formula inference (paper §4.3).
func TestLibrarySignalsVary(t *testing.T) {
	varying := []struct {
		name string
		s    Signal
	}{
		{"EngineRPM", EngineRPM(21)},
		{"VehicleSpeed", VehicleSpeed(22)},
		{"CoolantTemp", CoolantTemp(23)},
		{"ThrottlePosition", ThrottlePosition(24)},
		{"SteeringAngle", SteeringAngle(25)},
	}
	for _, c := range varying {
		t.Run(c.name, func(t *testing.T) {
			min, max := math.Inf(1), math.Inf(-1)
			for i := 0; i < 600; i++ {
				v := c.s.Value(time.Duration(i) * 100 * time.Millisecond)
				min = math.Min(min, v)
				max = math.Max(max, v)
			}
			if max-min < 1e-6 {
				t.Fatalf("signal did not vary over 60s (min=max=%v)", min)
			}
		})
	}
}

// Property: Value is a pure function of t for random walks (quick check over
// arbitrary read orders).
func TestRandomWalkPureFunctionProperty(t *testing.T) {
	w := NewRandomWalk(99, 50, 3, 0, 100, 100*time.Millisecond)
	ref := map[time.Duration]float64{}
	for i := 0; i <= 100; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		ref[at] = w.Value(at)
	}
	f := func(steps []uint8) bool {
		for _, s := range steps {
			at := time.Duration(s%101) * 100 * time.Millisecond
			if w.Value(at) != ref[at] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
