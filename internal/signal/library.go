package signal

import "time"

// The constructors below build the physically-plausible signals the vehicle
// fleet uses. Ranges follow the quantities the paper reads from real cars:
// engine RPM, vehicle speed, coolant temperature, throttle position, fuel
// level, manifold pressure, battery voltage, steering angle, lateral
// acceleration, and torque assistance.

// EngineRPM models idle-to-highway engine speed: a bounded random walk
// between 700 and 4500 rpm.
func EngineRPM(seed int64) Signal {
	return NewRandomWalk(seed, 850, 180, 700, 4500, 200*time.Millisecond)
}

// VehicleSpeed models city driving speed in km/h.
func VehicleSpeed(seed int64) Signal {
	return NewRandomWalk(seed, 30, 2.5, 0, 130, 250*time.Millisecond)
}

// CoolantTemp models coolant warming toward operating temperature (°C)
// with small fluctuation.
func CoolantTemp(seed int64) Signal {
	return Sum{
		Ramp{Start: 20, PerSecond: 0.8, Min: 20, Max: 92},
		NewRandomWalk(seed, 0, 0.4, -3, 3, 500*time.Millisecond),
	}
}

// ThrottlePosition models pedal position in percent.
func ThrottlePosition(seed int64) Signal {
	return NewRandomWalk(seed, 12, 4, 0, 100, 150*time.Millisecond)
}

// FuelLevel models a slowly draining tank in percent.
func FuelLevel(seed int64) Signal {
	return Sum{
		Ramp{Start: 68, PerSecond: -0.01, Min: 5, Max: 100},
		NewRandomWalk(seed, 0, 0.15, -1.5, 1.5, time.Second),
	}
}

// ManifoldPressure models intake manifold absolute pressure in kPa.
func ManifoldPressure(seed int64) Signal {
	return NewRandomWalk(seed, 35, 4, 15, 105, 200*time.Millisecond)
}

// BatteryVoltage models system voltage with alternator ripple.
func BatteryVoltage(seed int64) Signal {
	return Sum{
		Constant(13.8),
		Sine{Amplitude: 0.25, Period: 7 * time.Second},
		NewRandomWalk(seed, 0, 0.05, -0.4, 0.4, 400*time.Millisecond),
	}
}

// SteeringAngle models steering wheel angle in degrees (±540).
func SteeringAngle(seed int64) Signal {
	return Sum{
		Sine{Amplitude: 120, Period: 11 * time.Second},
		NewRandomWalk(seed, 0, 8, -380, 380, 200*time.Millisecond),
	}
}

// LateralAcceleration models lateral g-force in m/s².
func LateralAcceleration(seed int64) Signal {
	return Sum{
		Sine{Amplitude: 2.1, Period: 9 * time.Second},
		NewRandomWalk(seed, 0, 0.2, -1.5, 1.5, 300*time.Millisecond),
	}
}

// TorqueAssistance models power-steering torque assistance in the
// normalised unit the KWP formula type 0x24 encodes (±0.255 full scale,
// matching the paper's observed byte ranges), including the sign changes
// that flip the X1 selector byte between 0x7F and 0x81.
func TorqueAssistance(seed int64) Signal {
	return Sum{
		Sine{Amplitude: 0.16, Period: 6 * time.Second},
		NewRandomWalk(seed, 0, 0.02, -0.08, 0.08, 250*time.Millisecond),
	}
}

// BrakePressure models hydraulic brake pressure in bar.
func BrakePressure(seed int64) Signal {
	return NewRandomWalk(seed, 4, 6, 0, 120, 200*time.Millisecond)
}

// AcceleratorPosition models accelerator pedal travel in percent.
func AcceleratorPosition(seed int64) Signal {
	return NewRandomWalk(seed, 15, 5, 0, 100, 150*time.Millisecond)
}

// OilTemperature models engine oil temperature in °C.
func OilTemperature(seed int64) Signal {
	return Sum{
		Ramp{Start: 18, PerSecond: 0.5, Min: 18, Max: 110},
		NewRandomWalk(seed, 0, 0.3, -2, 2, 700*time.Millisecond),
	}
}

// FuelInjectionQuantity models per-cylinder fuel injection in mm³/stroke.
func FuelInjectionQuantity(seed int64) Signal {
	return NewRandomWalk(seed, 12, 2, 2, 60, 180*time.Millisecond)
}

// DoorState models a door toggling between closed (0) and open (1) — an
// enum ESV with no formula.
func DoorState() Signal {
	return Switched{States: []float64{0, 0, 0, 1, 0, 1, 1, 0}, Dwell: 4 * time.Second}
}

// GearPosition models an automatic gearbox cycling P-R-N-D (0-3).
func GearPosition() Signal {
	return Switched{States: []float64{0, 1, 2, 3, 3, 2, 3, 0}, Dwell: 5 * time.Second}
}

// LampState models an indicator lamp duty cycle (0/1).
func LampState() Signal {
	return Switched{States: []float64{0, 1}, Dwell: 3 * time.Second}
}
