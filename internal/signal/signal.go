// Package signal models the time-varying physical quantities a vehicle's
// sensors measure: engine speed, coolant temperature, road speed, throttle
// position, and so on.
//
// Every ECU signal value (ESV) that DP-Reverser reverse engineers is fed by
// one of these generators: the ECU encodes the generator's instantaneous
// value through a proprietary formula into response-message bytes, and the
// diagnostic tool decodes and displays it. The generators deliberately vary
// over time — the paper's inference step needs (X, Y) pairs that span a
// value range, and a constant signal collapses a two-variable formula into a
// one-variable one (paper §4.3 "Cause of inconsistency"), which this package
// lets tests reproduce.
package signal

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Signal reports the value of a physical quantity at a virtual instant.
// Implementations must be deterministic functions of the instant (stateless
// between calls) so that re-reading a timestamp re-yields the same value.
type Signal interface {
	// Value reports the signal's value at instant t.
	Value(t time.Duration) float64
}

// Constant is a signal frozen at a single value, such as a sensor on a
// parked vehicle. Constant inputs are exactly the degenerate case the paper
// observes when GP drops a variable whose bytes never change.
type Constant float64

// Value implements Signal.
func (c Constant) Value(time.Duration) float64 { return float64(c) }

// Ramp rises linearly from Start at rate PerSecond, clamped to [Min, Max]
// when Max > Min.
type Ramp struct {
	Start     float64
	PerSecond float64
	Min, Max  float64
}

// Value implements Signal.
func (r Ramp) Value(t time.Duration) float64 {
	v := r.Start + r.PerSecond*t.Seconds()
	if r.Max > r.Min {
		v = math.Min(math.Max(v, r.Min), r.Max)
	}
	return v
}

// Sine oscillates around Center with the given Amplitude and Period. A
// Period of zero yields the Center value (degenerate but safe).
type Sine struct {
	Center    float64
	Amplitude float64
	Period    time.Duration
	Phase     float64 // radians
}

// Value implements Signal.
func (s Sine) Value(t time.Duration) float64 {
	if s.Period <= 0 {
		return s.Center
	}
	omega := 2 * math.Pi / s.Period.Seconds()
	return s.Center + s.Amplitude*math.Sin(omega*t.Seconds()+s.Phase)
}

// RandomWalk is a bounded random walk sampled on a fixed step grid. It is
// deterministic: the value at instant t is derived by replaying the walk
// from the seed, with a cache of the last position so sequential reads are
// O(steps advanced) rather than O(t).
type RandomWalk struct {
	Seed  int64
	Start float64
	// StepEvery is the grid spacing; values between grid points hold the
	// value of the preceding point (sample-and-hold, like a sensor poll).
	StepEvery time.Duration
	// MaxStep is the largest per-step change (uniform in ±MaxStep).
	MaxStep  float64
	Min, Max float64

	cacheIdx int64
	cacheVal float64
	cacheRNG *rand.Rand
}

// NewRandomWalk returns a bounded random walk signal.
func NewRandomWalk(seed int64, start, maxStep, min, max float64, stepEvery time.Duration) *RandomWalk {
	if stepEvery <= 0 {
		panic("signal: RandomWalk stepEvery must be positive")
	}
	if min >= max {
		panic(fmt.Sprintf("signal: RandomWalk bounds [%v, %v] invalid", min, max))
	}
	return &RandomWalk{Seed: seed, Start: start, StepEvery: stepEvery, MaxStep: maxStep, Min: min, Max: max}
}

// Value implements Signal.
func (w *RandomWalk) Value(t time.Duration) float64 {
	if t < 0 {
		t = 0
	}
	idx := int64(t / w.StepEvery)
	if w.cacheRNG == nil || idx < w.cacheIdx {
		w.cacheRNG = rand.New(rand.NewSource(w.Seed))
		w.cacheIdx = 0
		w.cacheVal = clamp(w.Start, w.Min, w.Max)
	}
	for w.cacheIdx < idx {
		delta := (w.cacheRNG.Float64()*2 - 1) * w.MaxStep
		w.cacheVal = clamp(w.cacheVal+delta, w.Min, w.Max)
		w.cacheIdx++
	}
	return w.cacheVal
}

func clamp(v, min, max float64) float64 {
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}

// Quantized wraps a signal and rounds its value to the nearest multiple of
// Step, mimicking sensors with coarse ADC resolution.
type Quantized struct {
	S    Signal
	Step float64
}

// Value implements Signal.
func (q Quantized) Value(t time.Duration) float64 {
	if q.Step <= 0 {
		return q.S.Value(t)
	}
	return math.Round(q.S.Value(t)/q.Step) * q.Step
}

// Sum adds component signals, e.g. a sine ripple on top of a ramp.
type Sum []Signal

// Value implements Signal.
func (s Sum) Value(t time.Duration) float64 {
	total := 0.0
	for _, c := range s {
		total += c.Value(t)
	}
	return total
}

// Switched alternates between discrete states on a fixed cadence — door
// open/closed, gear position, lamp on/off. These are the paper's
// "enum" ESVs that have no formula (Table 6's #ESV (Enum) column).
type Switched struct {
	States []float64
	Dwell  time.Duration
}

// Value implements Signal.
func (s Switched) Value(t time.Duration) float64 {
	if len(s.States) == 0 {
		return 0
	}
	if s.Dwell <= 0 {
		return s.States[0]
	}
	idx := int(t/s.Dwell) % len(s.States)
	return s.States[idx]
}
