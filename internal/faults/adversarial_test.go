package faults

import (
	"reflect"
	"testing"
	"time"

	"dpreverser/internal/bmwtp"
	"dpreverser/internal/can"
	"dpreverser/internal/isotp"
	"dpreverser/internal/vwtp"
)

// transfer builds one clean ISO-TP transfer on id as timestamped frames.
func transfer(id uint32, n int) []can.Frame {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	chunks, err := isotp.Segment(payload, 0xAA)
	if err != nil {
		panic(err)
	}
	var out []can.Frame
	for i, data := range chunks {
		f := can.MustFrame(id, data)
		f.Timestamp = time.Duration(i) * time.Millisecond
		out = append(out, f)
	}
	return out
}

func TestParseSpecAdversarialPreset(t *testing.T) {
	got, err := ParseSpec("adversarial")
	if err != nil {
		t.Fatal(err)
	}
	want := AdversarialSpec()
	// ParseSpec fills the default reorder window into every spec it
	// returns; normalise before comparing, as the round-trip test does.
	want.ReorderWindow = got.ReorderWindow
	if got != want {
		t.Fatalf("adversarial preset = %+v, want %+v", got, want)
	}
	if !got.Adversarial() || !got.Enabled() {
		t.Fatalf("adversarial preset not enabled: %+v", got)
	}
	back, err := ParseSpec(got.String())
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", got.String(), err)
	}
	if back != got {
		t.Fatalf("round trip %q: got %+v", got.String(), back)
	}
	over, err := ParseSpec("none, fc-starve=1, slow-drip=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if over.FCStarve != 1 || over.SlowDrip != 0.5 {
		t.Fatalf("override spec = %+v", over)
	}
}

func TestAdversarialDeterministic(t *testing.T) {
	in := transfer(0x7E8, 200)
	a := New(AdversarialSpec(), 42)
	b := New(AdversarialSpec(), 42)
	if !reflect.DeepEqual(a.Frames(in), b.Frames(in)) {
		t.Fatal("same spec+seed produced different adversarial captures")
	}
	if !reflect.DeepEqual(a.AttackedIDs(), b.AttackedIDs()) {
		t.Fatal("same spec+seed produced different attack ground truth")
	}
}

func TestFCStarveBurstShape(t *testing.T) {
	in := transfer(0x7E8, 40)
	inj := New(Spec{FCStarve: 1}, 3)
	out := inj.Frames(in)
	if inj.Stats().FCStarveBursts != 1 {
		t.Fatalf("stats = %+v, want one fc-starve burst", inj.Stats())
	}
	// The burst rides directly behind the first frame: three wait states,
	// a zero-block-size max-STmin lockup, an overflow abort.
	if len(out) != len(in)+5 {
		t.Fatalf("out %d frames, want %d", len(out), len(in)+5)
	}
	var fcs []isotp.FlowControl
	for _, f := range out {
		if isotp.Classify(f.Payload()) != isotp.FlowControlFrame {
			continue
		}
		fc, err := isotp.DecodeFlowControl(f.Payload())
		if err != nil {
			t.Fatal(err)
		}
		fcs = append(fcs, fc)
	}
	if len(fcs) != 5 {
		t.Fatalf("forged flow controls = %d, want 5", len(fcs))
	}
	for i := 0; i < 3; i++ {
		if fcs[i].Status != isotp.Wait {
			t.Fatalf("fc[%d] = %+v, want wait state", i, fcs[i])
		}
	}
	if fcs[3].Status != isotp.ContinueToSend || fcs[3].BlockSize != 0 || fcs[3].STmin < 100*time.Millisecond {
		t.Fatalf("fc[3] = %+v, want zero-block-size max-STmin lockup", fcs[3])
	}
	if fcs[4].Status != isotp.Overflow {
		t.Fatalf("fc[4] = %+v, want overflow", fcs[4])
	}
	want := map[uint32][]string{0x7E8: {ClassFCStarvation}}
	if !reflect.DeepEqual(inj.AttackedIDs(), want) {
		t.Fatalf("AttackedIDs = %v, want %v", inj.AttackedIDs(), want)
	}
	// The real transfer still assembles: hostile flow control must not
	// cost the victim its payload.
	assertAssembles(t, out, 40)
}

func TestFFFloodShape(t *testing.T) {
	in := transfer(0x7E8, 40)
	inj := New(Spec{FFFlood: 1}, 3)
	out := inj.Frames(in)
	if inj.Stats().FFFloods != 1 {
		t.Fatalf("stats = %+v, want one flood", inj.Stats())
	}
	if len(out) != len(in)+3 {
		t.Fatalf("out %d frames, want %d", len(out), len(in)+3)
	}
	huge := 0
	for _, f := range out {
		data := f.Payload()
		if isotp.Classify(data) == isotp.FirstFrame {
			if n := int(data[0]&0x0F)<<8 | int(data[1]); n == 0xFFF {
				huge++
			}
		}
	}
	if huge != 3 {
		t.Fatalf("forged near-max first frames = %d, want 3", huge)
	}
	want := map[uint32][]string{0x7E8: {ClassFirstFrameFlood}}
	if !reflect.DeepEqual(inj.AttackedIDs(), want) {
		t.Fatalf("AttackedIDs = %v, want %v", inj.AttackedIDs(), want)
	}
}

func TestInterleaveShape(t *testing.T) {
	in := transfer(0x7E8, 40) // FF + 5 CFs
	inj := New(Spec{Interleave: 1}, 3)
	out := inj.Frames(in)
	if inj.Stats().InterleavedFFs != 1 {
		t.Fatalf("stats = %+v, want one interleaved injection", inj.Stats())
	}
	// One forged competing FF plus one forged out-of-sequence CF, landing
	// right after the victim's first frame.
	if len(out) != len(in)+2 {
		t.Fatalf("out %d frames, want %d", len(out), len(in)+2)
	}
	var lens []int
	for _, f := range out {
		data := f.Payload()
		if isotp.Classify(data) == isotp.FirstFrame {
			lens = append(lens, int(data[0]&0x0F)<<8|int(data[1]))
		}
	}
	// Real FF announces 40; the forgery announces a small competing
	// length that differs from it.
	if len(lens) != 2 || lens[0] != 40 {
		t.Fatalf("first-frame lengths on the wire = %v", lens)
	}
	if lens[1] == 40 {
		t.Fatalf("forged interleave FF announced the victim's length: %v", lens)
	}
	forged := out[2].Payload() // FF, forged FF, forged CF, real CFs…
	if isotp.Classify(forged) != isotp.ConsecutiveFrame || forged[0] != 0x23 {
		t.Fatalf("frame after the forged FF = % X, want an out-of-sequence CF", forged)
	}
	want := map[uint32][]string{0x7E8: {ClassInterleave}}
	if !reflect.DeepEqual(inj.AttackedIDs(), want) {
		t.Fatalf("AttackedIDs = %v, want %v", inj.AttackedIDs(), want)
	}
}

func TestSessionReplayShape(t *testing.T) {
	in := transfer(0x7E8, 40)
	inj := New(Spec{SessionReplay: 1}, 3)
	out := inj.Frames(in)
	if inj.Stats().ReplayedFFs != 2 {
		t.Fatalf("stats = %+v, want two replayed first frames", inj.Stats())
	}
	var ffs []can.Frame
	for _, f := range out {
		if isotp.Classify(f.Payload()) == isotp.FirstFrame {
			ffs = append(ffs, f)
		}
	}
	if len(ffs) != 3 {
		t.Fatalf("first frames on the wire = %d, want original + 2 replays", len(ffs))
	}
	if ffs[1] != ffs[0] || ffs[2] != ffs[0] {
		t.Fatalf("replays are not byte-identical to the original: %v", ffs)
	}
	want := map[uint32][]string{0x7E8: {ClassSessionStarvation}}
	if !reflect.DeepEqual(inj.AttackedIDs(), want) {
		t.Fatalf("AttackedIDs = %v, want %v", inj.AttackedIDs(), want)
	}
}

func TestSlowDripSuppressesConsecutiveFrames(t *testing.T) {
	in := transfer(0x7E8, 40)
	inj := New(Spec{SlowDrip: 1}, 3)
	out := inj.Frames(in)
	st := inj.Stats()
	if st.DrippedTransfers != 1 || st.DrippedFrames != len(in)-1 {
		t.Fatalf("stats = %+v, want one dripped transfer, %d dripped frames", st, len(in)-1)
	}
	if len(out) != 1 || isotp.Classify(out[0].Payload()) != isotp.FirstFrame {
		t.Fatalf("out = %v, want only the first frame to survive", out)
	}
	want := map[uint32][]string{0x7E8: {ClassSlowDrip}}
	if !reflect.DeepEqual(inj.AttackedIDs(), want) {
		t.Fatalf("AttackedIDs = %v, want %v", inj.AttackedIDs(), want)
	}
}

func TestAdversarialBMWPrefixed(t *testing.T) {
	payload := make([]byte, 40)
	chunks, err := bmwtp.Segment(0x12, payload, 0xFF)
	if err != nil {
		t.Fatal(err)
	}
	var in []can.Frame
	for _, data := range chunks {
		in = append(in, can.MustFrame(0x612, data))
	}
	inj := New(Spec{FCStarve: 1, FFFlood: 1}, 3)
	out := inj.Frames(in)
	st := inj.Stats()
	if st.FCStarveBursts != 1 || st.FFFloods != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Every forged frame carries the victim's extended-addressing byte.
	for _, f := range out {
		if f.Payload()[0] != 0x12 {
			t.Fatalf("forged frame lost the address prefix: % X", f.Payload())
		}
	}
}

func TestAdversarialVWTPNotReadyBurst(t *testing.T) {
	payload := make([]byte, 40)
	chunks, err := vwtp.Segment(payload, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	setup := can.MustFrame(vwtp.BroadcastID+0x01, []byte{0x00, 0xD0, 0x40, 0x07, 0x40, 0x07, 0x01})
	in := []can.Frame{setup}
	for _, data := range chunks {
		in = append(in, can.MustFrame(0x740, data))
	}
	inj := New(Spec{FCStarve: 1}, 3)
	out := inj.Frames(in)
	if inj.Stats().FCStarveBursts != 1 {
		t.Fatalf("stats = %+v, want one not-ready burst", inj.Stats())
	}
	if len(out) != len(in)+3 {
		t.Fatalf("out %d frames, want %d", len(out), len(in)+3)
	}
	notReady := 0
	for _, f := range out {
		if f.ID == 0x740 && vwtp.IsNotReady(f.Payload()) {
			notReady++
		}
	}
	if notReady != 3 {
		t.Fatalf("not-ready ACKs = %d, want 3", notReady)
	}
	want := map[uint32][]string{0x740: {ClassFCStarvation}}
	if !reflect.DeepEqual(inj.AttackedIDs(), want) {
		t.Fatalf("AttackedIDs = %v, want %v", inj.AttackedIDs(), want)
	}
}

// assertAssembles reassembles the capture and fails unless a message of
// the wanted length comes out.
func assertAssembles(t *testing.T, frames []can.Frame, want int) {
	t.Helper()
	var r isotp.Reassembler
	for _, f := range frames {
		if isotp.Classify(f.Payload()) == isotp.FlowControlFrame {
			continue // the assembler screens these out the same way
		}
		if res, _ := r.Feed(f.Payload()); len(res.Message) == want {
			return
		}
	}
	t.Fatalf("capture no longer assembles a %d-byte message", want)
}
