// Package faults is a deterministic, seedable fault-injection subsystem
// for the capture → assembly → inference pipeline. It perturbs the two
// lossy inputs a real deployment of DP-Reverser sees — CAN captures and
// OCR'd screen readings — with the fault classes real transport traffic
// exhibits (CAN-D, Verma et al.; "The Vehicle May Be Sick", Baek et al.):
// frame drops, duplicates, reordering inside a jitter window, payload bit
// flips, truncated multi-frame transfers, interleaved/aborted sessions,
// timestamp jitter, and OCR noise on displayed Y values (digit
// substitution, dropped decimal points, misread signs).
//
// Injection is byte-deterministic for a given Spec and seed: an Injector
// consumes one private RNG sequentially over its input, independent of
// everything downstream (including the pipeline's Parallelism), so a
// faulted capture is as reproducible as a clean one.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Spec declares the fault mix. All probabilities are per-frame (or
// per-displayed-value for the OCR classes) in [0, 1]; zero disables the
// class.
type Spec struct {
	// Drop is the probability a frame is lost.
	Drop float64
	// Dup is the probability a frame is delivered twice.
	Dup float64
	// Reorder is the probability a frame is delayed past 1..ReorderWindow
	// of its successors.
	Reorder float64
	// ReorderWindow bounds how far a reordered frame may move (frames).
	ReorderWindow int
	// BitFlip is the probability one random payload bit of a frame flips.
	BitFlip float64
	// Truncate is the probability a multi-frame transfer loses 1-3 of its
	// consecutive frames right after the first frame (a transfer cut off
	// mid-flight).
	Truncate float64
	// Abort is the probability a transfer's first frame is re-injected one
	// frame later, modelling an interleaved or aborted session restarting
	// on the same arbitration ID.
	Abort float64
	// Jitter is the maximum absolute timestamp perturbation applied to
	// every frame (zero disables).
	Jitter time.Duration
	// OCRDigit is the per-displayed-value probability of one digit being
	// misread.
	OCRDigit float64
	// OCRDecimal is the per-displayed-value probability of the decimal
	// point being dropped ("25.00" → "2500").
	OCRDecimal float64
	// OCRSign is the per-displayed-value probability of the sign being
	// misread (a lost or hallucinated leading minus).
	OCRSign float64

	// The adversarial classes below model the transport-layer DoS attacks
	// of "The Vehicle May Be Sick" (Baek et al.). Each probability is
	// per-transfer: it is rolled once on every multi-frame transfer's
	// opening frame, and a hit injects that attack against the transfer.

	// FCStarve is the probability a transfer is answered with a burst of
	// forged hostile flow-control frames: wait states, a zero-block-size
	// maximum-STmin lockup, and an overflow abort.
	FCStarve float64
	// FFFlood is the probability a transfer's first frame is followed by a
	// flood of forged first frames announcing near-maximum lengths, each
	// restarting reassembly with a large pending buffer.
	FFFlood float64
	// Interleave is the probability a competing forged transfer is
	// interleaved into an in-flight one: small, varying first frames
	// injected between its consecutive frames.
	Interleave float64
	// SessionReplay is the probability a transfer's real first frame is
	// replayed byte-identically while the transfer is in flight,
	// restarting the session from zero (session starvation).
	SessionReplay float64
	// SlowDrip is the probability a transfer's consecutive frames are all
	// withheld after the first frame: the transfer opens, then drips
	// nothing and never completes.
	SlowDrip float64
}

// DefaultSpec is the reference fault mix the differential soak test runs:
// 5% frame drop, 2% bit flip, 1% OCR digit noise.
func DefaultSpec() Spec {
	return Spec{Drop: 0.05, BitFlip: 0.02, OCRDigit: 0.01, ReorderWindow: 4}
}

// HeavySpec turns every fault class on at adversarial rates.
func HeavySpec() Spec {
	return Spec{
		Drop: 0.10, Dup: 0.05, Reorder: 0.05, ReorderWindow: 6,
		BitFlip: 0.05, Truncate: 0.10, Abort: 0.05,
		Jitter:   5 * time.Millisecond,
		OCRDigit: 0.03, OCRDecimal: 0.01, OCRSign: 0.01,
	}
}

// AdversarialSpec turns on every transport-layer attack class at the
// rates the adversarial soak runs: no random damage, only deliberately
// hostile traffic shapes.
func AdversarialSpec() Spec {
	return Spec{
		FCStarve: 0.25, FFFlood: 0.20, Interleave: 0.20,
		SessionReplay: 0.20, SlowDrip: 0.15,
	}
}

// Enabled reports whether any fault class is active.
func (s Spec) Enabled() bool {
	return s.Drop > 0 || s.Dup > 0 || s.Reorder > 0 || s.BitFlip > 0 ||
		s.Truncate > 0 || s.Abort > 0 || s.Jitter > 0 ||
		s.OCRDigit > 0 || s.OCRDecimal > 0 || s.OCRSign > 0 ||
		s.Adversarial()
}

// Adversarial reports whether any transport-attack class is active.
func (s Spec) Adversarial() bool {
	return s.FCStarve > 0 || s.FFFlood > 0 || s.Interleave > 0 ||
		s.SessionReplay > 0 || s.SlowDrip > 0
}

// String renders the spec in ParseSpec's syntax (only non-zero classes).
func (s Spec) String() string {
	var parts []string
	add := func(key string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", key, v))
		}
	}
	add("drop", s.Drop)
	add("dup", s.Dup)
	add("reorder", s.Reorder)
	if s.Reorder > 0 && s.ReorderWindow > 0 {
		parts = append(parts, fmt.Sprintf("window=%d", s.ReorderWindow))
	}
	add("flip", s.BitFlip)
	add("truncate", s.Truncate)
	add("abort", s.Abort)
	if s.Jitter > 0 {
		parts = append(parts, fmt.Sprintf("jitter=%s", s.Jitter))
	}
	add("ocr", s.OCRDigit)
	add("ocr-decimal", s.OCRDecimal)
	add("ocr-sign", s.OCRSign)
	add("fc-starve", s.FCStarve)
	add("ff-flood", s.FFFlood)
	add("interleave", s.Interleave)
	add("session-replay", s.SessionReplay)
	add("slow-drip", s.SlowDrip)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// presets are the named starting points ParseSpec accepts.
var presets = map[string]func() Spec{
	"none":        func() Spec { return Spec{} },
	"default":     DefaultSpec,
	"heavy":       HeavySpec,
	"adversarial": AdversarialSpec,
}

// PresetNames lists the accepted preset names, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseSpec parses a fault-spec string: a comma-separated sequence of
// preset names and key=value overrides, applied left to right.
//
//	"default"                        the reference mix
//	"drop=0.1,flip=0.05"             explicit classes from zero
//	"default,ocr=0.05,jitter=2ms"    preset plus overrides
//
// Keys: drop, dup, reorder, window (int), flip, truncate, abort,
// jitter (duration), ocr, ocr-decimal, ocr-sign, fc-starve, ff-flood,
// interleave, session-replay, slow-drip.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, tok := range strings.Split(text, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, hasVal := strings.Cut(tok, "=")
		key = strings.TrimSpace(key)
		if !hasVal {
			preset, ok := presets[key]
			if !ok {
				return Spec{}, fmt.Errorf("faults: unknown preset %q (have %s)",
					key, strings.Join(PresetNames(), ", "))
			}
			s = preset()
			continue
		}
		val = strings.TrimSpace(val)
		if err := s.set(key, val); err != nil {
			return Spec{}, err
		}
	}
	if err := s.validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// set applies one key=value override.
func (s *Spec) set(key, val string) error {
	switch key {
	case "window":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("faults: bad window %q (want positive integer)", val)
		}
		s.ReorderWindow = n
		return nil
	case "jitter":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("faults: bad jitter %q (want non-negative duration)", val)
		}
		s.Jitter = d
		return nil
	}
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("faults: bad probability %q for %s", val, key)
	}
	switch key {
	case "drop":
		s.Drop = p
	case "dup":
		s.Dup = p
	case "reorder":
		s.Reorder = p
	case "flip":
		s.BitFlip = p
	case "truncate":
		s.Truncate = p
	case "abort":
		s.Abort = p
	case "ocr":
		s.OCRDigit = p
	case "ocr-decimal":
		s.OCRDecimal = p
	case "ocr-sign":
		s.OCRSign = p
	case "fc-starve":
		s.FCStarve = p
	case "ff-flood":
		s.FFFlood = p
	case "interleave":
		s.Interleave = p
	case "session-replay":
		s.SessionReplay = p
	case "slow-drip":
		s.SlowDrip = p
	default:
		return fmt.Errorf("faults: unknown key %q", key)
	}
	return nil
}

// validate bounds every probability and fills defaults.
func (s *Spec) validate() error {
	for _, c := range []struct {
		name string
		p    float64
	}{
		{"drop", s.Drop}, {"dup", s.Dup}, {"reorder", s.Reorder},
		{"flip", s.BitFlip}, {"truncate", s.Truncate}, {"abort", s.Abort},
		{"ocr", s.OCRDigit}, {"ocr-decimal", s.OCRDecimal}, {"ocr-sign", s.OCRSign},
		{"fc-starve", s.FCStarve}, {"ff-flood", s.FFFlood},
		{"interleave", s.Interleave}, {"session-replay", s.SessionReplay},
		{"slow-drip", s.SlowDrip},
	} {
		if c.p < 0 || c.p > 1 {
			return fmt.Errorf("faults: %s probability %g outside [0, 1]", c.name, c.p)
		}
	}
	if s.ReorderWindow == 0 {
		s.ReorderWindow = 4
	}
	return nil
}
