package faults

import (
	"reflect"
	"testing"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/isotp"
	"dpreverser/internal/ocr"
	"dpreverser/internal/telemetry"
)

func TestParseSpecPresets(t *testing.T) {
	got, err := ParseSpec("default")
	if err != nil {
		t.Fatal(err)
	}
	if got != DefaultSpec() {
		t.Fatalf("default preset = %+v, want %+v", got, DefaultSpec())
	}
	got, err = ParseSpec("none")
	if err != nil {
		t.Fatal(err)
	}
	if got.Enabled() {
		t.Fatalf("none preset enabled: %+v", got)
	}
}

func TestParseSpecOverrides(t *testing.T) {
	s, err := ParseSpec("default, flip=0.5, jitter=2ms, window=7, ocr-sign=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if s.Drop != 0.05 || s.BitFlip != 0.5 || s.Jitter != 2*time.Millisecond ||
		s.ReorderWindow != 7 || s.OCRSign != 0.25 {
		t.Fatalf("override spec = %+v", s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus", "drop=x", "drop=1.5", "window=0", "jitter=-1ms", "unknown=0.1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, s := range []Spec{DefaultSpec(), HeavySpec(), {}} {
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s.String(), err)
		}
		// The zero spec renders as "none", which parses back with the
		// default reorder window filled in; normalise before comparing.
		if s.ReorderWindow == 0 {
			s.ReorderWindow = back.ReorderWindow
		}
		if back != s {
			t.Fatalf("round trip %q: got %+v want %+v", s.String(), back, s)
		}
	}
}

// burst builds a deterministic test capture: n single frames plus one
// multi-frame ISO-TP transfer per 8 frames.
func burst(n int) []can.Frame {
	var out []can.Frame
	at := time.Duration(0)
	payload := make([]byte, 20)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < n; i++ {
		at += time.Millisecond
		if i%8 == 7 {
			frames, _ := isotp.Segment(payload, 0xAA)
			for _, data := range frames {
				f := can.MustFrame(0x7E8, data)
				f.Timestamp = at
				out = append(out, f)
				at += time.Millisecond
			}
			continue
		}
		f := can.MustFrame(0x7E0, []byte{0x02, 0x10, byte(i), 0xAA, 0xAA, 0xAA, 0xAA, 0xAA})
		f.Timestamp = at
		out = append(out, f)
	}
	return out
}

func TestFramesDeterministic(t *testing.T) {
	in := burst(400)
	a := New(HeavySpec(), 42).Frames(in)
	b := New(HeavySpec(), 42).Frames(in)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec+seed produced different captures")
	}
	c := New(HeavySpec(), 43).Frames(in)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical heavy-fault captures")
	}
}

func TestFramesZeroSpecIsIdentity(t *testing.T) {
	in := burst(100)
	inj := New(Spec{}, 1)
	out := inj.Frames(in)
	if !reflect.DeepEqual(out, in) {
		t.Fatal("zero spec modified the capture")
	}
	if inj.Stats().Total() != 0 {
		t.Fatalf("zero spec injected faults: %+v", inj.Stats())
	}
}

func TestDropRate(t *testing.T) {
	in := burst(2000)
	inj := New(Spec{Drop: 0.05}, 7)
	out := inj.Frames(in)
	st := inj.Stats()
	if st.Dropped == 0 || len(out) != len(in)-st.Dropped {
		t.Fatalf("dropped %d, in %d, out %d", st.Dropped, len(in), len(out))
	}
	rate := float64(st.Dropped) / float64(len(in))
	if rate < 0.02 || rate > 0.10 {
		t.Fatalf("drop rate %.3f far from 0.05", rate)
	}
}

func TestTruncateSuppressesConsecutiveFrames(t *testing.T) {
	frames, err := isotp.Segment(make([]byte, 40), 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	var in []can.Frame
	for i, data := range frames {
		f := can.MustFrame(0x7E8, data)
		f.Timestamp = time.Duration(i) * time.Millisecond
		in = append(in, f)
	}
	inj := New(Spec{Truncate: 1}, 3)
	out := inj.Frames(in)
	st := inj.Stats()
	if st.TruncatedTransfers != 1 || st.TruncatedFrames == 0 {
		t.Fatalf("stats = %+v, want one truncated transfer", st)
	}
	if len(out) != len(in)-st.TruncatedFrames {
		t.Fatalf("out %d, in %d, truncated %d", len(out), len(in), st.TruncatedFrames)
	}
	// The first frame survives; reassembly of the remainder must fail.
	var r isotp.Reassembler
	for _, f := range out {
		if res, _ := r.Feed(f.Payload()); res.Message != nil {
			t.Fatal("truncated transfer still assembled")
		}
	}
}

func TestAbortReinjectsFirstFrame(t *testing.T) {
	frames, _ := isotp.Segment(make([]byte, 40), 0xAA)
	var in []can.Frame
	for _, data := range frames {
		in = append(in, can.MustFrame(0x7E8, data))
	}
	inj := New(Spec{Abort: 1}, 3)
	out := inj.Frames(in)
	if inj.Stats().AbortedTransfers != 1 {
		t.Fatalf("stats = %+v", inj.Stats())
	}
	ffs := 0
	for _, f := range out {
		if isotp.Classify(f.Payload()) == isotp.FirstFrame {
			ffs++
		}
	}
	if ffs != 2 {
		t.Fatalf("first frames on the wire = %d, want 2 (original + re-injection)", ffs)
	}
	if len(out) != len(in)+1 {
		t.Fatalf("out %d, want %d", len(out), len(in)+1)
	}
}

func TestReorderStaysWithinWindowAndFlushes(t *testing.T) {
	in := burst(500)
	inj := New(Spec{Reorder: 0.2, ReorderWindow: 4}, 11)
	out := inj.Frames(in)
	if len(out) != len(in) {
		t.Fatalf("reorder changed frame count: %d != %d", len(out), len(in))
	}
	if inj.Stats().Reordered == 0 {
		t.Fatal("nothing reordered at 20%")
	}
	// Every input frame must still be present (multiset equality via
	// counting by rendered identity).
	count := map[can.Frame]int{}
	for _, f := range in {
		count[f]++
	}
	for _, f := range out {
		count[f]--
	}
	for f, n := range count {
		if n != 0 {
			t.Fatalf("frame %v count off by %d after reorder", f, n)
		}
	}
}

func TestBitFlipChangesExactlyOneBit(t *testing.T) {
	in := burst(1)
	inj := New(Spec{BitFlip: 1}, 5)
	out := inj.Frames(in)
	if len(out) != 1 || inj.Stats().BitFlipped != 1 {
		t.Fatalf("out=%d stats=%+v", len(out), inj.Stats())
	}
	diff := 0
	for i := 0; i < in[0].Len; i++ {
		x := in[0].Data[i] ^ out[0].Data[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit distance = %d, want 1", diff)
	}
}

func uiFixture() []ocr.Frame {
	return []ocr.Frame{
		{At: time.Second, ScreenName: "live-data", Rows: []ocr.Row{
			{Index: 0, Label: "Engine speed", Value: "1250.50", Parsed: 1250.50, ParseOK: true},
			{Index: 1, Label: "Coolant", Value: "-4.00", Parsed: -4, ParseOK: true},
			{Index: 2, Label: "State", Value: "On"},
		}},
	}
}

func TestUIFramesOCRNoise(t *testing.T) {
	inj := New(Spec{OCRDecimal: 1}, 9)
	out := inj.UIFrames(uiFixture())
	if got := out[0].Rows[0].Value; got != "1250.50" && got != "125050" {
		t.Fatalf("unexpected value %q", got)
	}
	if out[0].Rows[0].Value != "125050" {
		t.Fatalf("decimal drop not applied: %q", out[0].Rows[0].Value)
	}
	if !out[0].Corrupted {
		t.Fatal("frame not flagged corrupted")
	}
	st := inj.Stats()
	if st.DecimalDrops != 2 || st.CorruptedValues != 2 || st.Values != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Input untouched.
	if fx := uiFixture(); fx[0].Rows[0].Value != "1250.50" {
		t.Fatal("fixture mutated")
	}
}

func TestUIFramesSignFlip(t *testing.T) {
	inj := New(Spec{OCRSign: 1}, 9)
	out := inj.UIFrames(uiFixture())
	if got := out[0].Rows[1].Value; got != "4.00" {
		t.Fatalf("sign flip on negative = %q, want 4.00", got)
	}
	if got := out[0].Rows[0].Value; got != "-1250.50" {
		t.Fatalf("sign flip on positive = %q, want -1250.50", got)
	}
}

func TestUIFramesDeterministic(t *testing.T) {
	spec := Spec{OCRDigit: 0.5, OCRDecimal: 0.2, OCRSign: 0.1}
	a := New(spec, 21).UIFrames(uiFixture())
	b := New(spec, 21).UIFrames(uiFixture())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("OCR noise not deterministic")
	}
}

func TestPublish(t *testing.T) {
	reg := telemetry.NewRegistry()
	inj := New(Spec{Drop: 0.5}, 1)
	inj.Frames(burst(200))
	inj.Publish(reg)
	cv := reg.CounterVec(telemetry.MetricFaultsInjected, "", "kind")
	if got := cv.With("drop").Value(); got != float64(inj.Stats().Dropped) {
		t.Fatalf("published drop counter = %v, want %d", got, inj.Stats().Dropped)
	}
	// Publishing on a nil registry must not panic.
	inj.Publish(nil)
}
