package faults

import (
	"math/rand"
	"strconv"
	"strings"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/colstore"
	"dpreverser/internal/isotp"
	"dpreverser/internal/ocr"
	"dpreverser/internal/sim"
	"dpreverser/internal/telemetry"
)

// Stats counts every injected fault, as ground truth for the degradation
// experiments and for the telemetry fault-rate counters.
type Stats struct {
	// FramesIn / FramesOut bracket the frame-path throughput.
	FramesIn, FramesOut int
	// Per-class frame fault counts.
	Dropped, Duplicated, Reordered, BitFlipped, Jittered int
	// TruncatedTransfers counts transfers cut off; TruncatedFrames the
	// consecutive frames suppressed for them.
	TruncatedTransfers, TruncatedFrames int
	// AbortedTransfers counts first frames re-injected mid-transfer.
	AbortedTransfers int
	// Values / CorruptedValues bracket the OCR path; the three fields
	// below break corruption down by failure mode.
	Values, CorruptedValues            int
	DigitSubs, DecimalDrops, SignFlips int

	// Adversarial attack counts: transfers answered with hostile
	// flow-control bursts, forged first-frame floods, forged transfers
	// interleaved into real ones, first frames replayed mid-session, and
	// transfers dripped dry (plus the consecutive frames withheld).
	FCStarveBursts, FFFloods, InterleavedFFs, ReplayedFFs int
	DrippedTransfers, DrippedFrames                       int
}

// Counts maps stable kind labels to fault counts, the shape the
// telemetry counter consumes.
func (s Stats) Counts() map[string]int {
	return map[string]int{
		"drop":        s.Dropped,
		"dup":         s.Duplicated,
		"reorder":     s.Reordered,
		"bit-flip":    s.BitFlipped,
		"jitter":      s.Jittered,
		"truncate":    s.TruncatedFrames,
		"abort":       s.AbortedTransfers,
		"ocr-digit":   s.DigitSubs,
		"ocr-decimal": s.DecimalDrops,
		"ocr-sign":    s.SignFlips,

		"fc-starve":      s.FCStarveBursts,
		"ff-flood":       s.FFFloods,
		"interleave":     s.InterleavedFFs,
		"session-replay": s.ReplayedFFs,
		"slow-drip":      s.DrippedFrames,
	}
}

// Total sums every injected fault event.
func (s Stats) Total() int {
	n := 0
	for _, v := range s.Counts() {
		n += v
	}
	return n
}

// held is one frame parked in the delay queue: a reordered original or a
// re-injected first frame, emitted after `after` more input frames.
type held struct {
	frame can.Frame
	after int
}

// Injector applies a Spec to captures. It is deterministic: one RNG,
// seeded at construction, consumed sequentially over the input. An
// Injector is stateful (reorder queue, per-ID truncation state) and not
// safe for concurrent use; wrap it in a mutex for streaming fan-out.
type Injector struct {
	spec  Spec
	rng   *rand.Rand
	stats Stats

	queue    []held
	truncate map[uint32]int
	adv      advState
}

// New builds an injector for spec with a deterministic seed.
func New(spec Spec, seed int64) *Injector {
	if spec.ReorderWindow < 1 {
		spec.ReorderWindow = 4
	}
	return &Injector{
		spec:     spec,
		rng:      sim.NewRand(seed),
		truncate: map[uint32]int{},
		adv:      newAdvState(),
	}
}

// Spec returns the fault mix in effect.
func (in *Injector) Spec() Spec { return in.spec }

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats { return in.stats }

// Frames perturbs a whole capture's frame slice: Stream over every frame,
// then Flush. The input is not modified.
func (in *Injector) Frames(frames []can.Frame) []can.Frame {
	out := make([]can.Frame, 0, len(frames))
	for _, f := range frames {
		out = append(out, in.Stream(f)...)
	}
	return append(out, in.Flush()...)
}

// FramesInto perturbs a whole capture straight into a columnar frame
// store: each delivered frame is appended to dst as it is emitted, with
// no intermediate []can.Frame materialised. The input is not modified.
func (in *Injector) FramesInto(frames []can.Frame, dst *colstore.Frames) {
	emit := func(g can.Frame) { dst.Append(g.ID, g.Timestamp, g.Payload()) }
	for _, f := range frames {
		in.stream(f, emit)
	}
	in.flush(emit)
}

// Stream feeds one frame through the injector and returns the frames to
// deliver now: zero (dropped, reordered, truncated), one, or several
// (duplicates, delayed frames coming due). canbridge uses this form to
// perturb live traffic; Frames uses it for recorded captures.
func (in *Injector) Stream(f can.Frame) []can.Frame {
	var out []can.Frame
	in.stream(f, func(g can.Frame) { out = append(out, g) })
	return out
}

// stream is the emit-callback core of Stream: frames due now are handed
// to emit in delivery order.
func (in *Injector) stream(f can.Frame, emit func(can.Frame)) {
	in.stats.FramesIn++
	data := f.Payload()
	in.learnVWTP(f.ID, data)

	emitted := true
	switch {
	case in.suppressDripped(f.ID, data):
		emitted = false
	case in.suppressTruncated(f.ID, data):
		emitted = false
	case in.spec.Drop > 0 && in.rng.Float64() < in.spec.Drop:
		in.stats.Dropped++
		emitted = false
	default:
		if in.spec.BitFlip > 0 && f.Len > 0 && in.rng.Float64() < in.spec.BitFlip {
			i := in.rng.Intn(f.Len)
			f.Data[i] ^= 1 << in.rng.Intn(8)
			in.stats.BitFlipped++
			data = f.Payload()
		}
		if in.spec.Jitter > 0 {
			span := int64(2*in.spec.Jitter) + 1
			off := time.Duration(in.rng.Int63n(span)) - in.spec.Jitter
			if off != 0 {
				ts := f.Timestamp + off
				if ts < 0 {
					ts = 0
				}
				f.Timestamp = ts
				in.stats.Jittered++
			}
		}
	}

	var reinject *can.Frame
	reorderAfter := 0
	if emitted {
		if startsTransfer(data) {
			// Transfer-level faults key off the first frame.
			in.truncate[f.ID] = 0
			if in.spec.Truncate > 0 && in.rng.Float64() < in.spec.Truncate {
				in.truncate[f.ID] = 1 + in.rng.Intn(3)
				in.stats.TruncatedTransfers++
			}
			if in.spec.Abort > 0 && in.rng.Float64() < in.spec.Abort {
				copyFF := f
				reinject = &copyFF
				in.stats.AbortedTransfers++
			}
		}
		dup := in.spec.Dup > 0 && in.rng.Float64() < in.spec.Dup
		if in.spec.Reorder > 0 && in.rng.Float64() < in.spec.Reorder {
			reorderAfter = 1 + in.rng.Intn(in.spec.ReorderWindow)
			in.stats.Reordered++
		} else {
			in.stats.FramesOut++
			emit(f)
			if dup {
				in.stats.FramesOut++
				emit(f)
				in.stats.Duplicated++
			}
			if in.spec.Adversarial() {
				in.injectAdversarial(f, data, emit)
			}
		}
	}

	// Advance the delay queue by one input frame and release what is due.
	rest := in.queue[:0]
	for _, h := range in.queue {
		h.after--
		if h.after <= 0 {
			in.stats.FramesOut++
			emit(h.frame)
		} else {
			rest = append(rest, h)
		}
	}
	in.queue = rest
	if reorderAfter > 0 {
		in.queue = append(in.queue, held{frame: f, after: reorderAfter})
	}
	if reinject != nil {
		in.queue = append(in.queue, held{frame: *reinject, after: 1})
	}
}

// Flush releases every frame still parked in the delay queue, in queue
// order. Call it after the last Stream of a capture.
func (in *Injector) Flush() []can.Frame {
	out := make([]can.Frame, 0, len(in.queue))
	in.flush(func(g can.Frame) { out = append(out, g) })
	return out
}

// flush is the emit-callback core of Flush.
func (in *Injector) flush(emit func(can.Frame)) {
	for _, h := range in.queue {
		in.stats.FramesOut++
		emit(h.frame)
	}
	in.queue = in.queue[:0]
}

// suppressTruncated drops the consecutive frames of a transfer marked for
// truncation. Any non-consecutive frame on the ID ends the suppression.
func (in *Injector) suppressTruncated(id uint32, data []byte) bool {
	left := in.truncate[id]
	if left <= 0 {
		return false
	}
	if !continuesTransfer(data) {
		in.truncate[id] = 0
		return false
	}
	in.truncate[id] = left - 1
	in.stats.TruncatedFrames++
	return true
}

// startsTransfer recognises a multi-frame transfer's opening frame under
// normal or extended (BMW) addressing. The injector sees raw frames with
// no per-ID transport knowledge, so this is a heuristic — which is fine:
// a misclassified frame just receives a different flavour of noise.
func startsTransfer(data []byte) bool {
	if isotp.Classify(data) == isotp.FirstFrame {
		return true
	}
	return len(data) >= 3 && isotp.Classify(data[1:]) == isotp.FirstFrame
}

// continuesTransfer recognises consecutive frames the same way.
func continuesTransfer(data []byte) bool {
	if isotp.Classify(data) == isotp.ConsecutiveFrame {
		return true
	}
	return len(data) >= 2 && isotp.Classify(data[1:]) == isotp.ConsecutiveFrame
}

// UIFrames perturbs OCR'd video frames: each numeric displayed value
// suffers the spec's OCR failure modes (decimal-point loss, digit
// substitution, sign misread), replayed through the same helpers the OCR
// engine uses. The input is not modified; corrupted frames are flagged.
func (in *Injector) UIFrames(frames []ocr.Frame) []ocr.Frame {
	out := make([]ocr.Frame, len(frames))
	for i, f := range frames {
		nf := f
		nf.Rows = append([]ocr.Row(nil), f.Rows...)
		frameCorrupted := false
		for j := range nf.Rows {
			row := &nf.Rows[j]
			if !row.ParseOK || row.Value == "" {
				continue
			}
			in.stats.Values++
			if text, changed := in.corruptValue(row.Value); changed {
				row.Value = text
				v, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
				row.Parsed, row.ParseOK = v, err == nil
				in.stats.CorruptedValues++
				frameCorrupted = true
			}
		}
		if frameCorrupted {
			nf.Corrupted = true
		}
		out[i] = nf
	}
	return out
}

// corruptValue draws each OCR failure mode independently for one value.
func (in *Injector) corruptValue(text string) (string, bool) {
	changed := false
	if in.spec.OCRDecimal > 0 && in.rng.Float64() < in.spec.OCRDecimal {
		if out, ok := ocr.DropDecimal(text); ok {
			text, changed = out, true
			in.stats.DecimalDrops++
		}
	}
	if in.spec.OCRDigit > 0 && in.rng.Float64() < in.spec.OCRDigit {
		if out, ok := ocr.SubstituteDigit(in.rng, text); ok {
			text, changed = out, true
			in.stats.DigitSubs++
		}
	}
	if in.spec.OCRSign > 0 && in.rng.Float64() < in.spec.OCRSign {
		if out, ok := ocr.FlipSign(text); ok {
			text, changed = out, true
			in.stats.SignFlips++
		}
	}
	return text, changed
}

// Publish adds the injector's fault counters to a telemetry registry
// under the dpreverser_faults_injected_total family (label: kind). A nil
// registry is a no-op.
func (in *Injector) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	cv := reg.CounterVec(telemetry.MetricFaultsInjected,
		"faults injected into the capture by class", "kind")
	for kind, n := range in.stats.Counts() {
		if n > 0 {
			cv.With(kind).Add(float64(n))
		}
	}
}
