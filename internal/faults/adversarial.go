package faults

import (
	"sort"

	"dpreverser/internal/bmwtp"
	"dpreverser/internal/can"
	"dpreverser/internal/isotp"
	"dpreverser/internal/vwtp"
)

// Canonical attack-class labels. They double as the detector's
// degraded-stream Reason strings and the metric label values of
// dpreverser_attack_signatures_total, so they must stay stable (the
// reverser package declares the same set for classification).
const (
	ClassFCStarvation      = "flow-control-starvation"
	ClassFirstFrameFlood   = "first-frame-flood"
	ClassInterleave        = "interleaved-transfer"
	ClassSessionStarvation = "session-starvation"
	ClassSlowDrip          = "slow-drip"
)

// floodLength is the payload length forged first-frame floods announce:
// near the 12-bit ISO-TP maximum, so every flood frame pins a
// near-maximum reassembly buffer.
const floodLength = 0xFFF

// advState is the per-Injector adversarial bookkeeping.
type advState struct {
	drip     map[uint32]bool
	vwtpIDs  map[uint32]bool
	vwtpMsg  map[uint32]bool // a VW TP message is currently in flight
	attacked map[uint32]map[string]bool
	seq      int // varies forged-frame bytes between injections
}

func newAdvState() advState {
	return advState{
		drip:     map[uint32]bool{},
		vwtpIDs:  map[uint32]bool{},
		vwtpMsg:  map[uint32]bool{},
		attacked: map[uint32]map[string]bool{},
	}
}

// AttackedIDs is the injector's ground truth: every CAN ID that received
// at least one adversarial injection, with its attack classes sorted.
// Under a saturating single-class spec (probability 1) the reverser's
// detector attributes exactly these IDs; at partial probabilities a
// lone under-threshold injection may stay below the signature floor.
func (in *Injector) AttackedIDs() map[uint32][]string {
	out := make(map[uint32][]string, len(in.adv.attacked))
	for id, classes := range in.adv.attacked {
		list := make([]string, 0, len(classes))
		for c := range classes {
			list = append(list, c)
		}
		sort.Strings(list)
		out[id] = list
	}
	return out
}

// mark records ground truth for one attacked ID.
func (in *Injector) mark(id uint32, class string) {
	m := in.adv.attacked[id]
	if m == nil {
		m = map[string]bool{}
		in.adv.attacked[id] = m
	}
	m[class] = true
}

// learnVWTP watches channel-setup traffic the same way the assembler
// does, so adversarial injections use VW TP frame shapes on negotiated
// data IDs instead of ISO-TP ones.
func (in *Injector) learnVWTP(id uint32, data []byte) {
	if !in.spec.Adversarial() {
		return
	}
	if id < vwtp.BroadcastID || id >= vwtp.BroadcastID+0x100 {
		return
	}
	if len(data) >= 7 && data[1] == 0xD0 {
		ecuRx := uint32(data[2]) | uint32(data[3])<<8
		ecuTx := uint32(data[4]) | uint32(data[5])<<8
		in.adv.vwtpIDs[ecuRx] = true
		in.adv.vwtpIDs[ecuTx] = true
	}
}

// suppressDripped withholds the consecutive frames of a transfer marked
// for slow-drip: the first frame went out, nothing follows it. Any
// non-consecutive frame on the ID ends the drip.
func (in *Injector) suppressDripped(id uint32, data []byte) bool {
	if !in.adv.drip[id] {
		return false
	}
	if !continuesTransfer(data) {
		delete(in.adv.drip, id)
		return false
	}
	in.stats.DrippedFrames++
	return true
}

// injectAdversarial runs after a real frame is emitted in place: every
// opening (first) frame rolls each attack class, and a firing class
// injects its forgeries immediately — racing the real sender, so the
// forged frames land mid-transfer regardless of how many consecutive
// frames the victim transfer carries.
func (in *Injector) injectAdversarial(f can.Frame, data []byte, emit func(can.Frame)) {
	if in.adv.vwtpIDs[f.ID] {
		in.adversarialVWTP(f, data, emit)
		return
	}
	// Mirror the assembler's transport dispatch (reverser.isBMWID): IDs in
	// the BMW extended-addressing range carry an address byte before the
	// ISO-TP PCI, everything else is plain ISO-TP. Sniffing the frame
	// shape instead would misread consecutive frames whose first payload
	// byte falls in 0x10..0x1F as first frames.
	prefixed, addr, isFF := false, byte(0), false
	if f.ID == 0x6F1 || (f.ID >= 0x600 && f.ID <= 0x6EF) {
		if len(data) >= 3 && isotp.Classify(data[1:]) == isotp.FirstFrame {
			isFF, prefixed, addr = true, true, data[0]
		}
	} else {
		isFF = isotp.Classify(data) == isotp.FirstFrame
	}
	if isFF {
		if p := in.spec.FCStarve; p > 0 && in.rng.Float64() < p {
			in.emitFCStarve(f, prefixed, addr, emit)
		}
		if p := in.spec.FFFlood; p > 0 && in.rng.Float64() < p {
			in.emitFFFlood(f, prefixed, addr, emit)
		}
		if p := in.spec.Interleave; p > 0 && in.rng.Float64() < p {
			in.emitInterleave(f, prefixed, addr, emit)
		}
		if p := in.spec.SessionReplay; p > 0 && in.rng.Float64() < p {
			// Twice back to back: the first lands mid-transfer and restarts
			// the session, the second restarts the restart — back-to-back
			// identical first frames before any data flowed, a shape no
			// benign re-poll produces.
			in.stats.FramesOut += 2
			emit(f)
			emit(f)
			in.stats.ReplayedFFs += 2
			in.mark(f.ID, ClassSessionStarvation)
		}
		if p := in.spec.SlowDrip; p > 0 && in.rng.Float64() < p {
			in.adv.drip[f.ID] = true
			in.stats.DrippedTransfers++
			in.mark(f.ID, ClassSlowDrip)
		}
	}
}

// adversarialVWTP attacks a negotiated VW TP 2.0 data ID. Only
// flow-control starvation applies: bursts of receiver-not-ready ACKs,
// the TP 2.0 wait state a hostile peer floods to stall the sender.
func (in *Injector) adversarialVWTP(f can.Frame, data []byte, emit func(can.Frame)) {
	if vwtp.Classify(data) != vwtp.KindData {
		return
	}
	start := !in.adv.vwtpMsg[f.ID]
	in.adv.vwtpMsg[f.ID] = !vwtp.IsLastData(data)
	if !start {
		return
	}
	if p := in.spec.FCStarve; p > 0 && in.rng.Float64() < p {
		next := (vwtp.Seq(data) + 1) & 0x0F
		for i := 0; i < 3; i++ {
			in.emitForged(f, vwtp.EncodeACK(next, false), emit)
		}
		in.stats.FCStarveBursts++
		in.mark(f.ID, ClassFCStarvation)
	}
}

// emitFCStarve injects the hostile flow-control burst: three wait
// states, one zero-block-size maximum-STmin lockup, one overflow abort.
func (in *Injector) emitFCStarve(f can.Frame, prefixed bool, addr byte, emit func(can.Frame)) {
	fc := func(status isotp.FlowStatus, bs, stMin byte) []byte {
		if prefixed {
			return bmwtp.EncodeFlowControl(addr, status, bs, stMin)
		}
		return isotp.EncodeFlowControl(status, bs, stMin)
	}
	for i := 0; i < 3; i++ {
		in.emitForged(f, fc(isotp.Wait, 0, 0), emit)
	}
	in.emitForged(f, fc(isotp.ContinueToSend, 0, 0x7F), emit)
	in.emitForged(f, fc(isotp.Overflow, 0, 0), emit)
	in.stats.FCStarveBursts++
	in.mark(f.ID, ClassFCStarvation)
}

// emitInterleave injects one competing session mid-transfer: a forged
// first frame announcing a foreign length, immediately followed by a
// consecutive frame whose sequence number cannot continue it — the frame
// mix two interleaved transfers on one ID produce, which no single
// well-formed transfer can.
func (in *Injector) emitInterleave(f can.Frame, prefixed bool, addr byte, emit func(can.Frame)) {
	in.emitForged(f, forgeFF(prefixed, addr, 0x20+in.adv.seq%0x20, byte(in.adv.seq)), emit)
	cf := []byte{0x23, 0xAD, byte(in.adv.seq), 0xAD, byte(in.adv.seq), 0xAD, 0xAD, 0xAD}
	if prefixed {
		cf = append([]byte{addr}, cf[:7]...)
	}
	in.emitForged(f, cf, emit)
	in.adv.seq++
	in.stats.InterleavedFFs++
	in.mark(f.ID, ClassInterleave)
}

// emitFFFlood injects three forged first frames announcing near-maximum
// transfer lengths, each one restarting reassembly on the ID with a
// large pending buffer.
func (in *Injector) emitFFFlood(f can.Frame, prefixed bool, addr byte, emit func(can.Frame)) {
	for i := 0; i < 3; i++ {
		in.emitForged(f, forgeFF(prefixed, addr, floodLength, byte(in.adv.seq)), emit)
		in.adv.seq++
	}
	in.stats.FFFloods++
	in.mark(f.ID, ClassFirstFrameFlood)
}

// emitForged delivers one forged frame on the trigger frame's ID and
// timestamp, so the forgery lands adjacent to its trigger even if the
// capture is later re-sorted by time.
func (in *Injector) emitForged(f can.Frame, data []byte, emit func(can.Frame)) {
	g := can.Frame{ID: f.ID, Extended: f.Extended, Timestamp: f.Timestamp, Len: len(data)}
	copy(g.Data[:], data)
	in.stats.FramesOut++
	emit(g)
}

// forgeFF builds a forged ISO-TP first frame announcing `length` bytes,
// with a varying filler byte so successive forgeries are distinguishable
// from genuine session replays. prefixed adds the extended-addressing
// byte BMW IDs carry.
func forgeFF(prefixed bool, addr byte, length int, filler byte) []byte {
	ff := []byte{0x10 | byte(length>>8)&0x0F, byte(length), 0xAD, filler, 0xAD, filler, 0xAD, filler}
	if prefixed {
		return append([]byte{addr}, ff[:7]...)
	}
	return ff
}
