package canbridge

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"dpreverser/internal/can"
)

// IngestSink receives one live stream's events. The IngestServer calls a
// sink from the session's connection goroutine only, so implementations
// need no locking against the server. Close is called exactly once, after
// the last Frame/Advance.
type IngestSink interface {
	// Frame delivers one streamed frame, already stamped with the
	// session's virtual clock.
	Frame(f can.Frame) error
	// Advance reports the client moving the session clock forward; the
	// server has already applied it to subsequent frame timestamps.
	Advance(d time.Duration) error
	// Close ends the session. complete is true when the client shut the
	// connection down cleanly (EOF), false when the server is closing or
	// the connection failed mid-stream.
	Close(complete bool)
}

// IngestServer is the receiving side of the canbridge line protocol: where
// Server streams a simulated bus out, IngestServer accepts frames in —
// the live-capture front door of the reverse-engineering job server.
//
// A session:
//
//	server → client:  HELLO canbridge 1
//	client → server:  HELLO <token>         bind the stream to a job
//	server → client:  OK                    (or ERR + close for a bad token)
//	client → server:  SEND 7E0#0210...      one frame, stamped at session time
//	client → server:  ADVANCE 50            advance session time 50 ms
//	client → server:  (EOF)                 finalise the stream
//
// Each session owns a virtual clock that starts at zero and moves only on
// ADVANCE, so the assembled capture is as deterministic as the client's
// own frame ordering.
type IngestServer struct {
	// open resolves a session token to its sink; an error refuses the
	// session (sent to the client as an ERR line).
	open func(token string) (IngestSink, error)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewIngestServer builds an ingest listener that resolves stream tokens
// through open.
func NewIngestServer(open func(token string) (IngestSink, error)) *IngestServer {
	return &IngestServer{open: open, conns: map[net.Conn]bool{}}
}

// Listen starts accepting stream sessions on addr ("127.0.0.1:0" for an
// ephemeral port) and returns the bound address.
func (s *IngestServer) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("canbridge: ingest listen: %w", err)
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

// Close stops the listener and tears down every live session (their sinks
// see Close(false)).
func (s *IngestServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *IngestServer) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *IngestServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	fmt.Fprintln(conn, Format(Greeting))
	sc := bufio.NewScanner(conn)

	// Handshake: the first line must bind a token.
	sink, err := s.handshake(sc)
	if err != nil {
		fmt.Fprintln(conn, Format(MsgErr{Msg: err.Error()}))
		return
	}
	fmt.Fprintln(conn, Format(MsgOK{}))

	// Stream loop. The session clock starts at zero; SEND stamps, ADVANCE
	// moves.
	var now time.Duration
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		msg, perr := Parse(line)
		var cmdErr error
		switch m := msg.(type) {
		case MsgSend:
			f := m.Frame
			f.Timestamp = now
			cmdErr = sink.Frame(f)
		case MsgAdvance:
			now += m.D
			cmdErr = sink.Advance(m.D)
		default:
			cmdErr = perr
			if cmdErr == nil {
				cmdErr = fmt.Errorf("canbridge: unexpected %q during a stream", strings.Fields(line)[0])
			}
		}
		if cmdErr != nil {
			fmt.Fprintln(conn, Format(MsgErr{Msg: cmdErr.Error()}))
			continue
		}
		fmt.Fprintln(conn, Format(MsgOK{}))
	}
	// EOF with no scanner error is a clean finalisation; anything else —
	// including the server closing the socket — is a truncated stream.
	sink.Close(sc.Err() == nil && !s.closing())
}

// closing reports whether Close is tearing the server down.
func (s *IngestServer) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// handshake reads the client HELLO and resolves its token.
func (s *IngestServer) handshake(sc *bufio.Scanner) (IngestSink, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		msg, err := Parse(line)
		if err != nil {
			return nil, err
		}
		hello, ok := msg.(MsgHello)
		if !ok {
			return nil, fmt.Errorf("canbridge: expected HELLO <token>, got %q", line)
		}
		return s.open(hello.Subject)
	}
	return nil, fmt.Errorf("canbridge: connection closed before HELLO")
}

// StreamConn is the client side of one ingest session: dial, stream
// SEND/ADVANCE commands synchronously, Close to finalise. Unlike Client it
// never redials — a dropped ingest connection means a truncated stream,
// and silently rebinding a fresh session would hide that.
type StreamConn struct {
	conn net.Conn
	rd   *bufio.Reader
}

// DialStream opens an ingest session bound to token.
func DialStream(addr, token string) (*StreamConn, error) {
	conn, rd, err := dialHello(addr)
	if err != nil {
		return nil, err
	}
	c := &StreamConn{conn: conn, rd: rd}
	if err := c.command(MsgHello{Subject: token}); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Send streams one frame into the session.
func (c *StreamConn) Send(f can.Frame) error { return c.command(MsgSend{Frame: f}) }

// Advance moves the session's virtual clock forward.
func (c *StreamConn) Advance(d time.Duration) error { return c.command(MsgAdvance{D: d}) }

// Close finalises the stream; the server-side sink sees a complete
// session.
func (c *StreamConn) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// command writes one line and waits for its OK/ERR.
func (c *StreamConn) command(m Message) error {
	if c.conn == nil {
		return fmt.Errorf("canbridge: stream closed")
	}
	if _, err := fmt.Fprintln(c.conn, Format(m)); err != nil {
		return err
	}
	for {
		line, err := c.rd.ReadString('\n')
		if err != nil {
			return err
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		msg, perr := Parse(line)
		if perr != nil {
			continue
		}
		switch reply := msg.(type) {
		case MsgOK:
			return nil
		case MsgErr:
			return &ServerError{Msg: reply.Msg}
		}
	}
}
