package canbridge

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"dpreverser/internal/can"
)

// IngestSink receives one live stream's events. The IngestServer calls a
// sink from the session's connection goroutine only, so implementations
// need no locking against the server. Close is called exactly once, after
// the last Frame/Advance.
type IngestSink interface {
	// Frame delivers one streamed frame, already stamped with the
	// session's virtual clock.
	Frame(f can.Frame) error
	// Advance reports the client moving the session clock forward; the
	// server has already applied it to subsequent frame timestamps.
	Advance(d time.Duration) error
	// Close ends the session. complete is true when the client shut the
	// connection down cleanly (EOF), false when the server is closing or
	// the connection failed mid-stream.
	Close(complete bool)
}

// FailableSink is optionally implemented by an IngestSink that wants the
// distinct reason a session was failed by the server's ingest guardrails
// (idle timeout, frame or byte budget). Fail is called at most once, from
// the session goroutine, immediately before Close(false).
type FailableSink interface {
	Fail(reason string)
}

// Stable session-failure reasons the ingest guardrails report through
// FailableSink.Fail.
const (
	// ReasonIdleTimeout: the peer sent nothing for IngestLimits.IdleTimeout.
	ReasonIdleTimeout = "idle-timeout"
	// ReasonFrameBudget: the session streamed more than MaxFrames frames.
	ReasonFrameBudget = "frame-budget"
	// ReasonByteBudget: the session streamed more than MaxBytes payload bytes.
	ReasonByteBudget = "byte-budget"
)

// IngestLimits bounds one ingest session against hostile or wedged peers.
// The zero value disables every guardrail (the pre-hardening behaviour).
type IngestLimits struct {
	// IdleTimeout fails a session that sends no line for this long. Two
	// mechanisms enforce it: a per-read network deadline (wall-clock mode
	// only), and the ExpireIdle sweep, which works against any clock.
	IdleTimeout time.Duration
	// MaxFrames caps SEND commands per session; 0 is unlimited.
	MaxFrames int
	// MaxBytes caps total streamed payload bytes per session; 0 is
	// unlimited.
	MaxBytes int64
	// Clock supplies the idle-tracking time base. Nil uses the wall
	// clock (and arms real read deadlines); tests inject a manual clock
	// and drive ExpireIdle themselves.
	Clock func() time.Duration
	// SweepInterval is the background idle-sweep period; 0 disables the
	// sweeper goroutine (callers drive ExpireIdle, or rely on read
	// deadlines).
	SweepInterval time.Duration
}

// IngestServer is the receiving side of the canbridge line protocol: where
// Server streams a simulated bus out, IngestServer accepts frames in —
// the live-capture front door of the reverse-engineering job server.
//
// A session:
//
//	server → client:  HELLO canbridge 1
//	client → server:  HELLO <token>         bind the stream to a job
//	server → client:  OK                    (or ERR + close for a bad token)
//	client → server:  SEND 7E0#0210...      one frame, stamped at session time
//	client → server:  ADVANCE 50            advance session time 50 ms
//	client → server:  (EOF)                 finalise the stream
//
// Each session owns a virtual clock that starts at zero and moves only on
// ADVANCE, so the assembled capture is as deterministic as the client's
// own frame ordering.
type IngestServer struct {
	// open resolves a session token to its sink; an error refuses the
	// session (sent to the client as an ERR line).
	open   func(token string) (IngestSink, error)
	limits IngestLimits
	epoch  time.Time

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	sessions map[net.Conn]*ingestSession
	closed   bool
	stop     chan struct{}
	wg       sync.WaitGroup
}

// ingestSession is the server's guardrail bookkeeping for one live
// connection, guarded by the server mutex.
type ingestSession struct {
	lastActive time.Duration
	failReason string
}

// NewIngestServer builds an ingest listener that resolves stream tokens
// through open, with no session guardrails.
func NewIngestServer(open func(token string) (IngestSink, error)) *IngestServer {
	return NewIngestServerLimited(open, IngestLimits{})
}

// NewIngestServerLimited builds an ingest listener whose sessions are
// bounded by limits.
func NewIngestServerLimited(open func(token string) (IngestSink, error), limits IngestLimits) *IngestServer {
	return &IngestServer{
		open:     open,
		limits:   limits,
		epoch:    time.Now(), //dplint:allow determinism idle-session tracking needs a wall-clock epoch when no clock is injected
		conns:    map[net.Conn]bool{},
		sessions: map[net.Conn]*ingestSession{},
		stop:     make(chan struct{}),
	}
}

// now reads the idle-tracking clock.
func (s *IngestServer) now() time.Duration {
	if s.limits.Clock != nil {
		return s.limits.Clock()
	}
	return time.Since(s.epoch) //dplint:allow determinism idle-session tracking needs the wall clock when no clock is injected
}

// touch records activity on a session.
func (s *IngestServer) touch(conn net.Conn) {
	at := s.now()
	s.mu.Lock()
	if sess := s.sessions[conn]; sess != nil {
		sess.lastActive = at
	}
	s.mu.Unlock()
}

// fail records the guardrail reason a session is being killed for. Only
// the first reason sticks.
func (s *IngestServer) fail(conn net.Conn, reason string) {
	s.mu.Lock()
	if sess := s.sessions[conn]; sess != nil && sess.failReason == "" {
		sess.failReason = reason
	}
	s.mu.Unlock()
}

// failReason reads (without clearing) a session's recorded failure.
func (s *IngestServer) failReason(conn net.Conn) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess := s.sessions[conn]; sess != nil {
		return sess.failReason
	}
	return ""
}

// armDeadline sets the per-read network deadline enforcing IdleTimeout.
// Only wall-clock sessions arm real deadlines; under an injected clock
// the ExpireIdle sweep is the enforcement path.
func (s *IngestServer) armDeadline(conn net.Conn) {
	if s.limits.IdleTimeout <= 0 || s.limits.Clock != nil {
		return
	}
	conn.SetReadDeadline(time.Now().Add(s.limits.IdleTimeout)) //dplint:allow determinism network read deadlines are wall-clock by nature
}

// ExpireIdle fails every session that has been silent for at least
// IdleTimeout, closing its connection so the session goroutine unblocks
// and reports ReasonIdleTimeout to the sink. The background sweeper calls
// it periodically; tests with an injected clock call it directly. Returns
// the number of sessions expired.
func (s *IngestServer) ExpireIdle() int {
	if s.limits.IdleTimeout <= 0 {
		return 0
	}
	now := s.now()
	s.mu.Lock()
	var expired []net.Conn
	for conn, sess := range s.sessions {
		if sess.failReason == "" && now-sess.lastActive >= s.limits.IdleTimeout {
			sess.failReason = ReasonIdleTimeout
			expired = append(expired, conn)
		}
	}
	s.mu.Unlock()
	for _, conn := range expired {
		conn.Close()
	}
	return len(expired)
}

// sweepLoop drives ExpireIdle until the server closes.
func (s *IngestServer) sweepLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-time.After(s.limits.SweepInterval):
			s.ExpireIdle()
		}
	}
}

// Listen starts accepting stream sessions on addr ("127.0.0.1:0" for an
// ephemeral port) and returns the bound address.
func (s *IngestServer) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("canbridge: ingest listen: %w", err)
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	if s.limits.IdleTimeout > 0 && s.limits.SweepInterval > 0 {
		s.wg.Add(1)
		go s.sweepLoop()
	}
	return l.Addr().String(), nil
}

// Close stops the listener and tears down every live session (their sinks
// see Close(false)).
func (s *IngestServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *IngestServer) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *IngestServer) serve(conn net.Conn) {
	defer s.wg.Done()
	s.mu.Lock()
	s.sessions[conn] = &ingestSession{lastActive: s.now()}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		delete(s.sessions, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	fmt.Fprintln(conn, Format(Greeting))
	sc := bufio.NewScanner(conn)

	// Handshake: the first line must bind a token.
	s.armDeadline(conn)
	sink, err := s.handshake(sc)
	if err != nil {
		fmt.Fprintln(conn, Format(MsgErr{Msg: err.Error()}))
		return
	}
	fmt.Fprintln(conn, Format(MsgOK{}))
	s.touch(conn)

	// Stream loop. The session clock starts at zero; SEND stamps, ADVANCE
	// moves. Frame and byte budgets guard reassembly state against a
	// hostile peer streaming without bound.
	var now time.Duration
	var frames int
	var bytes int64
	s.armDeadline(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		s.touch(conn)
		msg, perr := Parse(line)
		var cmdErr error
		var budget string
		switch m := msg.(type) {
		case MsgSend:
			frames++
			bytes += int64(m.Frame.Len)
			switch {
			case s.limits.MaxFrames > 0 && frames > s.limits.MaxFrames:
				budget = ReasonFrameBudget
			case s.limits.MaxBytes > 0 && bytes > s.limits.MaxBytes:
				budget = ReasonByteBudget
			default:
				f := m.Frame
				f.Timestamp = now
				cmdErr = sink.Frame(f)
			}
		case MsgAdvance:
			now += m.D
			cmdErr = sink.Advance(m.D)
		default:
			cmdErr = perr
			if cmdErr == nil {
				cmdErr = fmt.Errorf("canbridge: unexpected %q during a stream", strings.Fields(line)[0])
			}
		}
		if budget != "" {
			s.fail(conn, budget)
			fmt.Fprintln(conn, Format(MsgErr{Msg: "canbridge: session " + budget + " exceeded"}))
			break
		}
		if cmdErr != nil {
			fmt.Fprintln(conn, Format(MsgErr{Msg: cmdErr.Error()}))
			continue
		}
		fmt.Fprintln(conn, Format(MsgOK{}))
		s.armDeadline(conn)
	}
	// A read-deadline expiry is the wall-clock face of the idle timeout.
	reason := s.failReason(conn)
	if reason == "" {
		if ne, ok := sc.Err().(net.Error); ok && ne.Timeout() {
			reason = ReasonIdleTimeout
			s.fail(conn, reason)
		}
	}
	if reason != "" {
		if fs, ok := sink.(FailableSink); ok {
			fs.Fail(reason)
		}
	}
	// EOF with no scanner error is a clean finalisation; anything else —
	// a guardrail kill, the server closing the socket, or a dropped
	// connection — is a truncated stream.
	sink.Close(reason == "" && sc.Err() == nil && !s.closing())
}

// closing reports whether Close is tearing the server down.
func (s *IngestServer) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// handshake reads the client HELLO and resolves its token.
func (s *IngestServer) handshake(sc *bufio.Scanner) (IngestSink, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		msg, err := Parse(line)
		if err != nil {
			return nil, err
		}
		hello, ok := msg.(MsgHello)
		if !ok {
			return nil, fmt.Errorf("canbridge: expected HELLO <token>, got %q", line)
		}
		return s.open(hello.Subject)
	}
	return nil, fmt.Errorf("canbridge: connection closed before HELLO")
}

// StreamConn is the client side of one ingest session: dial, stream
// SEND/ADVANCE commands synchronously, Close to finalise. Unlike Client it
// never redials — a dropped ingest connection means a truncated stream,
// and silently rebinding a fresh session would hide that.
type StreamConn struct {
	conn net.Conn
	rd   *bufio.Reader
}

// DialStream opens an ingest session bound to token.
func DialStream(addr, token string) (*StreamConn, error) {
	conn, rd, err := dialHello(addr)
	if err != nil {
		return nil, err
	}
	c := &StreamConn{conn: conn, rd: rd}
	if err := c.command(MsgHello{Subject: token}); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Send streams one frame into the session.
func (c *StreamConn) Send(f can.Frame) error { return c.command(MsgSend{Frame: f}) }

// Advance moves the session's virtual clock forward.
func (c *StreamConn) Advance(d time.Duration) error { return c.command(MsgAdvance{D: d}) }

// Close finalises the stream; the server-side sink sees a complete
// session.
func (c *StreamConn) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// command writes one line and waits for its OK/ERR.
func (c *StreamConn) command(m Message) error {
	if c.conn == nil {
		return fmt.Errorf("canbridge: stream closed")
	}
	if _, err := fmt.Fprintln(c.conn, Format(m)); err != nil {
		return err
	}
	for {
		line, err := c.rd.ReadString('\n')
		if err != nil {
			return err
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		msg, perr := Parse(line)
		if perr != nil {
			continue
		}
		switch reply := msg.(type) {
		case MsgOK:
			return nil
		case MsgErr:
			return &ServerError{Msg: reply.Msg}
		}
	}
}
