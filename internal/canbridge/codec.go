package canbridge

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dpreverser/internal/can"
)

// This file is the single home of the canbridge wire grammar. Both ends of
// the line protocol — the Client that drives a simulated bus, the Server
// that exposes one, and the IngestServer that accepts live streams into
// reverse-engineering jobs — parse and format messages through Parse and
// Format, so the two sides cannot drift apart.
//
// One message is one line. The grammar:
//
//	HELLO canbridge 1          greeting (server → client)
//	HELLO <token>              ingest-session handshake (client → server)
//	SEND 7E0#021003            inject / stream one frame (no timestamp)
//	ADVANCE 500                advance the virtual clock by 500 ms
//	OK                         command accepted
//	ERR <message>              command refused
//	(000001.500000) 7E8#0650   bus traffic, candump notation

// Greeting is the HELLO every canbridge listener sends on accept.
var Greeting = MsgHello{Subject: "canbridge", Version: 1}

// Message is one protocol line, as a typed value. The concrete types are
// MsgHello, MsgSend, MsgAdvance, MsgOK, MsgErr and MsgFrame.
type Message interface {
	// line renders the message in wire form, without the trailing newline.
	line() string
}

// MsgHello is the HELLO line. The server greets with Subject "canbridge"
// and Version 1; an ingest client answers with its stream token as the
// Subject (Version 0, omitted on the wire).
type MsgHello struct {
	Subject string
	Version int
}

func (m MsgHello) line() string {
	if m.Version > 0 {
		return fmt.Sprintf("HELLO %s %d", m.Subject, m.Version)
	}
	return "HELLO " + m.Subject
}

// MsgSend injects one frame. The frame's Timestamp is not carried on the
// wire: the receiving side stamps it from its own virtual clock.
type MsgSend struct {
	Frame can.Frame
}

func (m MsgSend) line() string { return "SEND " + m.Frame.String() }

// MsgAdvance moves the receiver's virtual clock forward. The wire carries
// whole milliseconds.
type MsgAdvance struct {
	D time.Duration
}

func (m MsgAdvance) line() string { return fmt.Sprintf("ADVANCE %d", m.D.Milliseconds()) }

// MsgOK acknowledges the preceding command.
type MsgOK struct{}

func (MsgOK) line() string { return "OK" }

// MsgErr refuses the preceding command.
type MsgErr struct {
	Msg string
}

func (m MsgErr) line() string { return "ERR " + m.Msg }

// MsgFrame is one streamed bus frame, candump notation with a timestamp.
type MsgFrame struct {
	Frame can.Frame
}

func (m MsgFrame) line() string {
	return fmt.Sprintf("(%012.6f) %s", m.Frame.Timestamp.Seconds(), m.Frame.String())
}

// Format renders a message as its wire line, without the trailing newline.
func Format(m Message) string { return m.line() }

// Parse reads one wire line (already stripped of its newline) into a typed
// message. Leading/trailing whitespace is tolerated; verbs are
// case-insensitive, matching the historical server behaviour.
func Parse(line string) (Message, error) {
	line = strings.TrimSpace(line)
	if line == "" {
		return nil, fmt.Errorf("canbridge: empty line")
	}
	if strings.HasPrefix(line, "(") {
		f, err := can.ParseDumpLine(line)
		if err != nil {
			return nil, err
		}
		return MsgFrame{Frame: f}, nil
	}
	verb, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch strings.ToUpper(verb) {
	case "HELLO":
		subject, verText, _ := strings.Cut(rest, " ")
		if subject == "" {
			return nil, fmt.Errorf("canbridge: HELLO without a subject")
		}
		m := MsgHello{Subject: subject}
		if verText = strings.TrimSpace(verText); verText != "" {
			v, err := strconv.Atoi(verText)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("canbridge: bad HELLO version %q", verText)
			}
			m.Version = v
		}
		return m, nil
	case "SEND":
		// The SEND payload is timestamp-less; reuse the dump parser by
		// prefixing a zero timestamp.
		f, err := can.ParseDumpLine("(000000.000000) " + rest)
		if err != nil {
			return nil, err
		}
		f.Timestamp = 0
		return MsgSend{Frame: f}, nil
	case "ADVANCE":
		ms, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("canbridge: bad ADVANCE argument %q", rest)
		}
		return MsgAdvance{D: time.Duration(ms) * time.Millisecond}, nil
	case "OK":
		if rest != "" {
			return nil, fmt.Errorf("canbridge: OK takes no argument, got %q", rest)
		}
		return MsgOK{}, nil
	case "ERR":
		return MsgErr{Msg: rest}, nil
	default:
		return nil, fmt.Errorf("canbridge: unknown command %q", verb)
	}
}
