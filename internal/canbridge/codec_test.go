package canbridge

import (
	"reflect"
	"testing"
	"time"

	"dpreverser/internal/can"
)

// stamped builds a frame with a timestamp, for traffic-line cases.
func stamped(id uint32, data []byte, at time.Duration) can.Frame {
	f := can.MustFrame(id, data)
	f.Timestamp = at
	return f
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		msg  Message
		line string
	}{
		{"greeting", MsgHello{Subject: "canbridge", Version: 1}, "HELLO canbridge 1"},
		{"token-hello", MsgHello{Subject: "job-42-abc"}, "HELLO job-42-abc"},
		{"send", MsgSend{Frame: can.MustFrame(0x7E0, []byte{0x02, 0x10, 0x03})}, "SEND 7E0#021003"},
		{"send-empty", MsgSend{Frame: can.MustFrame(0x123, nil)}, "SEND 123#"},
		{"advance", MsgAdvance{D: 500 * time.Millisecond}, "ADVANCE 500"},
		{"advance-zero", MsgAdvance{}, "ADVANCE 0"},
		{"ok", MsgOK{}, "OK"},
		{"err", MsgErr{Msg: "no such token"}, "ERR no such token"},
		{"frame", MsgFrame{Frame: stamped(0x7E8, []byte{0x06, 0x50}, 1500*time.Millisecond)},
			"(00001.500000) 7E8#0650"}, // %012.6f, matching can.Dump

	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Format(tc.msg); got != tc.line {
				t.Fatalf("Format = %q, want %q", got, tc.line)
			}
			parsed, err := Parse(tc.line)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.line, err)
			}
			if !reflect.DeepEqual(parsed, tc.msg) {
				t.Fatalf("Parse(%q) = %#v, want %#v", tc.line, parsed, tc.msg)
			}
		})
	}
}

func TestCodecParseTolerance(t *testing.T) {
	// Historical behaviour the codec must keep: verbs are
	// case-insensitive and surrounding whitespace is ignored.
	cases := []struct {
		line string
		want Message
	}{
		{"  send 7E0#0100  ", MsgSend{Frame: can.MustFrame(0x7E0, []byte{0x01, 0x00})}},
		{"advance 25", MsgAdvance{D: 25 * time.Millisecond}},
		{"ok", MsgOK{}},
		{"ERR", MsgErr{}},
	}
	for _, tc := range cases {
		got, err := Parse(tc.line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.line, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("Parse(%q) = %#v, want %#v", tc.line, got, tc.want)
		}
	}
}

func TestCodecParseErrors(t *testing.T) {
	for _, line := range []string{
		"", "NOPE", "SEND zzz", "SEND", "ADVANCE xyz", "ADVANCE -5",
		"HELLO", "HELLO canbridge x", "OK extra", "(garbage) 123#00",
	} {
		if msg, err := Parse(line); err == nil {
			t.Fatalf("Parse(%q) = %#v, want error", line, msg)
		}
	}
}

// TestCodecSendStripsTimestamp pins the wire contract: SEND carries no
// timestamp, so a stamped frame round-trips with Timestamp zeroed and the
// receiver re-stamps from its own clock.
func TestCodecSendStripsTimestamp(t *testing.T) {
	f := stamped(0x700, []byte{0x01}, 3*time.Second)
	line := Format(MsgSend{Frame: f})
	parsed, err := Parse(line)
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed.(MsgSend).Frame.Timestamp; got != 0 {
		t.Fatalf("parsed SEND timestamp = %v, want 0", got)
	}
}
