package canbridge

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"dpreverser/internal/can"
)

// dialRetries is how many reconnect attempts a dropped connection earns
// before a command fails. Real OBD dongles drop their socket when the
// ignition cycles; one command must survive that.
const dialRetries = 2

// ServerError is a protocol-level rejection (an ERR line). The server
// parsed and refused the command, so retrying the same bytes is pointless
// and the client reports it immediately instead of reconnecting.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "canbridge: server rejected command: " + e.Msg }

// Client speaks the canbridge line protocol with automatic reconnect: a
// command interrupted by a dropped TCP connection redials (invoking the
// Backoff hook between attempts) and re-issues itself, up to dialRetries
// reconnects. Commands are synchronous; streamed bus frames that arrive
// while waiting for the OK are delivered to OnFrame.
//
// Client is not safe for concurrent use; the line protocol interleaves
// command replies with streamed traffic on one connection.
type Client struct {
	addr string
	conn net.Conn
	rd   *bufio.Reader

	// OnFrame, if set, receives every bus frame the server streams.
	// Frames observed on a connection that later drops are still
	// delivered — the capture keeps everything that made it across.
	OnFrame func(can.Frame)
	// Backoff, if set, is invoked before reconnect attempt n (1-based).
	// It defaults to nil — the in-process bridge reconnects instantly,
	// and sleeping here would desynchronise the simulated rig clock. A
	// live-bus deployment installs a real exponential sleep.
	Backoff func(attempt int)

	reconnects int
}

// Dial connects to a canbridge server and waits for its greeting.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	conn, rd, err := dialHello(c.addr)
	if err != nil {
		return err
	}
	c.conn, c.rd = conn, rd
	return nil
}

// dialHello opens a canbridge connection and consumes the server greeting.
func dialHello(addr string) (net.Conn, *bufio.Reader, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("canbridge: dial %s: %w", addr, err)
	}
	rd := bufio.NewReader(conn)
	greeting, err := rd.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("canbridge: reading greeting: %w", err)
	}
	hello, perr := Parse(greeting)
	if h, ok := hello.(MsgHello); perr != nil || !ok || h.Subject != Greeting.Subject {
		conn.Close()
		return nil, nil, fmt.Errorf("canbridge: unexpected greeting %q", strings.TrimSpace(greeting))
	}
	return conn, rd, nil
}

// Reconnects reports how many times the client redialled after a dropped
// connection — the soak harness asserts fault runs exercised this path.
func (c *Client) Reconnects() int { return c.reconnects }

// Close tears down the connection. Safe on an already-closed client.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Send injects one frame onto the bridged bus.
func (c *Client) Send(f can.Frame) error {
	return c.do(Format(MsgSend{Frame: f}))
}

// Advance moves the bridge's virtual clock forward.
func (c *Client) Advance(d time.Duration) error {
	return c.do(Format(MsgAdvance{D: d}))
}

// do issues one command, reconnecting on I/O failure. A ServerError (the
// command reached the server and was refused) is returned as-is.
func (c *Client) do(cmd string) error {
	var err error
	for attempt := 0; ; attempt++ {
		if c.conn == nil {
			err = c.connect()
		} else {
			err = nil
		}
		if err == nil {
			err = c.try(cmd)
			var se *ServerError
			if err == nil || errors.As(err, &se) {
				return err
			}
			// The connection died mid-command; drop it so the next
			// attempt redials.
			c.conn.Close()
			c.conn = nil
		}
		if attempt >= dialRetries {
			return err
		}
		c.reconnects++
		if c.Backoff != nil {
			c.Backoff(attempt + 1)
		}
	}
}

// try writes cmd and reads until its OK/ERR reply, routing interleaved
// traffic lines to OnFrame.
func (c *Client) try(cmd string) error {
	if _, err := fmt.Fprintln(c.conn, cmd); err != nil {
		return err
	}
	for {
		line, err := c.rd.ReadString('\n')
		if err != nil {
			return err
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		msg, perr := Parse(line)
		if perr != nil {
			continue // tolerate unknown lines, as the string matcher did
		}
		switch m := msg.(type) {
		case MsgOK:
			return nil
		case MsgErr:
			return &ServerError{Msg: m.Msg}
		case MsgFrame:
			if c.OnFrame != nil {
				c.OnFrame(m.Frame)
			}
		}
	}
}
