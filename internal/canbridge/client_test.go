package canbridge

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"dpreverser/internal/can"
)

func TestClientAgainstBridge(t *testing.T) {
	addr, veh := startVehicleBridge(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var frames []can.Frame
	c.OnFrame = func(f can.Frame) { frames = append(frames, f) }

	if err := c.Send(can.MustFrame(0x123, []byte{0xDE, 0xAD})); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(1500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if veh.Clock.Now() != 1500*time.Millisecond {
		t.Fatalf("clock = %v", veh.Clock.Now())
	}
	if len(frames) == 0 {
		t.Fatal("own SEND never streamed back")
	}
	if c.Reconnects() != 0 {
		t.Fatalf("healthy run reconnected %d times", c.Reconnects())
	}
}

func TestClientServerErrorDoesNotReconnect(t *testing.T) {
	addr, _ := startVehicleBridge(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A negative ADVANCE is refused by the server, not lost in transit:
	// the client must surface it without burning reconnect attempts.
	err = c.Advance(-5 * time.Millisecond)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ServerError", err)
	}
	if c.Reconnects() != 0 {
		t.Fatalf("protocol rejection triggered %d reconnects", c.Reconnects())
	}
}

// TestClientReconnectsAfterDrop serves two connections by hand: the first
// greets and then hangs up on the first command, the second behaves. One
// Advance must survive the drop via a single redial.
func TestClientReconnectsAfterDrop(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		fmt.Fprintln(conn, "HELLO canbridge 1")
		bufio.NewReader(conn).ReadString('\n') // swallow the doomed command
		conn.Close()

		conn2, err := l.Accept()
		if err != nil {
			return
		}
		fmt.Fprintln(conn2, "HELLO canbridge 1")
		rd := bufio.NewReader(conn2)
		for {
			if _, err := rd.ReadString('\n'); err != nil {
				return
			}
			fmt.Fprintln(conn2, "OK")
		}
	}()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var attempts []int
	c.Backoff = func(n int) { attempts = append(attempts, n) }

	if err := c.Advance(100 * time.Millisecond); err != nil {
		t.Fatalf("command did not survive the drop: %v", err)
	}
	if c.Reconnects() != 1 {
		t.Fatalf("reconnects = %d, want 1", c.Reconnects())
	}
	if len(attempts) != 1 || attempts[0] != 1 {
		t.Fatalf("backoff attempts = %v, want [1]", attempts)
	}
}

func TestClientGivesUpWhenServerStaysDown(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		fmt.Fprintln(conn, "HELLO canbridge 1")
		bufio.NewReader(conn).ReadString('\n')
		conn.Close()
		l.Close() // no second connection: every redial fails
	}()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(can.MustFrame(0x123, []byte{0x01})); err == nil {
		t.Fatal("command succeeded with the server gone")
	}
	if c.Reconnects() != dialRetries {
		t.Fatalf("reconnects = %d, want %d", c.Reconnects(), dialRetries)
	}
}
