package canbridge

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dpreverser/internal/can"
)

// failSink is a recordingSink that also captures the guardrail failure
// reason delivered through FailableSink.
type failSink struct {
	*recordingSink
	mu     sync.Mutex
	reason string
}

func newFailSink() *failSink { return &failSink{recordingSink: newRecordingSink()} }

func (s *failSink) Fail(reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reason = reason
}

func (s *failSink) failedWith() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reason
}

// testClock is a hand-driven time base for deterministic idle expiry.
type testClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *testClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func startLimitedIngest(t *testing.T, limits IngestLimits, sink IngestSink) (*IngestServer, string) {
	t.Helper()
	srv := NewIngestServerLimited(func(string) (IngestSink, error) { return sink, nil }, limits)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// TestIngestIdleTimeoutManualClock: with an injected clock, ExpireIdle
// fails exactly the sessions that have been silent past the timeout,
// with the distinct idle-timeout reason — no wall time involved.
func TestIngestIdleTimeoutManualClock(t *testing.T) {
	clk := &testClock{}
	sink := newFailSink()
	srv, addr := startLimitedIngest(t,
		IngestLimits{IdleTimeout: 100 * time.Millisecond, Clock: clk.Now}, sink)

	c, err := DialStream(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(can.MustFrame(0x7E0, []byte{0x01})); err != nil {
		t.Fatal(err)
	}
	// Still fresh: a sweep before the deadline expires nothing.
	clk.Advance(50 * time.Millisecond)
	if n := srv.ExpireIdle(); n != 0 {
		t.Fatalf("ExpireIdle expired %d fresh sessions", n)
	}
	clk.Advance(100 * time.Millisecond)
	if n := srv.ExpireIdle(); n != 1 {
		t.Fatalf("ExpireIdle = %d, want 1", n)
	}
	if complete := waitClosed(t, sink.recordingSink); complete {
		t.Fatal("idle-expired session reported complete")
	}
	if got := sink.failedWith(); got != ReasonIdleTimeout {
		t.Fatalf("fail reason = %q, want %q", got, ReasonIdleTimeout)
	}
}

// TestIngestFrameBudget: the session dies with a distinct reason on the
// frame past the budget, and the overflowing frame never reaches the sink.
func TestIngestFrameBudget(t *testing.T) {
	sink := newFailSink()
	_, addr := startLimitedIngest(t, IngestLimits{MaxFrames: 3}, sink)

	c, err := DialStream(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Send(can.MustFrame(0x7E0, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	err = c.Send(can.MustFrame(0x7E0, []byte{0xFF}))
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("over-budget send err = %v, want *ServerError", err)
	}
	if complete := waitClosed(t, sink.recordingSink); complete {
		t.Fatal("budget-killed session reported complete")
	}
	if got := sink.failedWith(); got != ReasonFrameBudget {
		t.Fatalf("fail reason = %q, want %q", got, ReasonFrameBudget)
	}
	if n := len(sink.snapshot()); n != 3 {
		t.Fatalf("sink got %d frames, want the 3 under budget", n)
	}
}

// TestIngestByteBudget: same guardrail, counted in payload bytes.
func TestIngestByteBudget(t *testing.T) {
	sink := newFailSink()
	_, addr := startLimitedIngest(t, IngestLimits{MaxBytes: 12}, sink)

	c, err := DialStream(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	full := can.MustFrame(0x7E0, []byte{0, 1, 2, 3, 4, 5, 6, 7})
	if err := c.Send(full); err != nil {
		t.Fatal(err)
	}
	err = c.Send(full)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("over-budget send err = %v, want *ServerError", err)
	}
	if complete := waitClosed(t, sink.recordingSink); complete {
		t.Fatal("budget-killed session reported complete")
	}
	if got := sink.failedWith(); got != ReasonByteBudget {
		t.Fatalf("fail reason = %q, want %q", got, ReasonByteBudget)
	}
}

// TestIngestWallClockReadDeadline: without an injected clock the idle
// timeout is enforced by real per-read network deadlines — a peer that
// dials and goes silent is cut off without any sweep being driven.
func TestIngestWallClockReadDeadline(t *testing.T) {
	sink := newFailSink()
	_, addr := startLimitedIngest(t, IngestLimits{IdleTimeout: 100 * time.Millisecond}, sink)

	c, err := DialStream(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Send nothing: the read deadline must kill the session on its own.
	if complete := waitClosed(t, sink.recordingSink); complete {
		t.Fatal("idle session reported complete")
	}
	if got := sink.failedWith(); got != ReasonIdleTimeout {
		t.Fatalf("fail reason = %q, want %q", got, ReasonIdleTimeout)
	}
}

// TestIngestZeroLimitsUnbounded: the zero IngestLimits keeps the original
// behaviour — no deadline, no budgets, clean EOF still completes.
func TestIngestZeroLimitsUnbounded(t *testing.T) {
	sink := newFailSink()
	_, addr := startLimitedIngest(t, IngestLimits{}, sink)

	c, err := DialStream(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Send(can.MustFrame(0x7E0, []byte{byte(i), 1, 2, 3, 4, 5, 6, 7})); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if complete := waitClosed(t, sink.recordingSink); !complete {
		t.Fatal("clean unbounded session reported incomplete")
	}
	if got := sink.failedWith(); got != "" {
		t.Fatalf("unexpected fail reason %q", got)
	}
}
