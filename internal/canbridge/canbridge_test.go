package canbridge

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/sim"
	"dpreverser/internal/uds"
	"dpreverser/internal/vehicle"
)

// dial connects a test client with line helpers.
type client struct {
	conn net.Conn
	rd   *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	c := &client{conn: conn, rd: bufio.NewReader(conn)}
	if greeting := c.readLine(t); !strings.HasPrefix(greeting, "HELLO") {
		t.Fatalf("greeting = %q", greeting)
	}
	return c
}

func (c *client) send(t *testing.T, line string) {
	t.Helper()
	if _, err := c.conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
}

// readLine reads with a deadline so a hung test fails fast.
func (c *client) readLine(t *testing.T) string {
	t.Helper()
	if err := c.conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	line, err := c.rd.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

// readUntil reads lines until pred matches, returning that line.
func (c *client) readUntil(t *testing.T, pred func(string) bool) string {
	t.Helper()
	for i := 0; i < 200; i++ {
		line := c.readLine(t)
		if pred(line) {
			return line
		}
	}
	t.Fatal("pattern never arrived")
	return ""
}

func startVehicleBridge(t *testing.T) (string, *vehicle.Vehicle) {
	t.Helper()
	p, _ := vehicle.ProfileByCar("Car M")
	clock := sim.NewClock(0)
	veh := vehicle.Build(p, clock)
	t.Cleanup(veh.Close)
	srv := NewServer(veh.Bus, clock)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, veh
}

func TestBridgeInjectAndObserveUDSExchange(t *testing.T) {
	addr, veh := startVehicleBridge(t)
	c := dial(t, addr)

	did := veh.Bindings()[0].ECU.DIDs()[0]
	reqID := veh.Bindings()[0].ReqID
	respID := veh.Bindings()[0].RespID
	req, _ := uds.BuildRDBIRequest(did)
	frame := can.MustFrame(reqID, append([]byte{byte(len(req))}, req...))

	c.send(t, "SEND "+frame.String())

	// The stream must carry our request, the ECU's response, and the OK.
	sawResp := false
	c.readUntil(t, func(line string) bool {
		if strings.Contains(line, strings.ToUpper(frameIDHex(respID))+"#") {
			sawResp = true
		}
		return line == "OK"
	})
	if !sawResp {
		// The response may arrive after OK depending on interleave; scan a
		// little further.
		c.readUntil(t, func(line string) bool {
			return strings.Contains(line, strings.ToUpper(frameIDHex(respID))+"#")
		})
	}
}

func frameIDHex(id uint32) string {
	f := can.Frame{ID: id}
	s := f.String()
	return s[:strings.IndexByte(s, '#')]
}

func TestBridgeAdvanceMovesClock(t *testing.T) {
	addr, veh := startVehicleBridge(t)
	c := dial(t, addr)
	c.send(t, "ADVANCE 1500")
	c.readUntil(t, func(line string) bool { return line == "OK" })
	if veh.Clock.Now() != 1500*time.Millisecond {
		t.Fatalf("clock = %v", veh.Clock.Now())
	}
}

func TestBridgeRejectsBadCommands(t *testing.T) {
	addr, _ := startVehicleBridge(t)
	c := dial(t, addr)
	for _, bad := range []string{"NOPE", "SEND zzz", "ADVANCE xyz", "ADVANCE -5"} {
		c.send(t, bad)
		line := c.readUntil(t, func(l string) bool { return strings.HasPrefix(l, "ERR") })
		if !strings.HasPrefix(line, "ERR") {
			t.Fatalf("response to %q: %q", bad, line)
		}
	}
}

func TestBridgeMultipleClients(t *testing.T) {
	addr, _ := startVehicleBridge(t)
	c1 := dial(t, addr)
	c2 := dial(t, addr)
	// A frame injected by client 1 must reach client 2's stream.
	c1.send(t, "SEND 123#DEADBEEF")
	c2.readUntil(t, func(line string) bool { return strings.Contains(line, "123#DEADBEEF") })
}

func TestBridgeFilterRewritesStream(t *testing.T) {
	p, _ := vehicle.ProfileByCar("Car M")
	clock := sim.NewClock(0)
	veh := vehicle.Build(p, clock)
	t.Cleanup(veh.Close)
	srv := NewServer(veh.Bus, clock)
	// Suppress frame 0x111 and duplicate frame 0x222 — the shape of a
	// fault injector.
	srv.SetFilter(func(f can.Frame) []can.Frame {
		switch f.ID {
		case 0x111:
			return nil
		case 0x222:
			return []can.Frame{f, f}
		}
		return []can.Frame{f}
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	c := dial(t, addr)
	c.send(t, "SEND 111#01")
	c.send(t, "SEND 222#02")
	c.send(t, "SEND 333#03")
	var dups, suppressed int
	c.readUntil(t, func(line string) bool {
		if strings.Contains(line, "111#") {
			suppressed++
		}
		if strings.Contains(line, "222#") {
			dups++
		}
		return strings.Contains(line, "333#")
	})
	if suppressed != 0 {
		t.Fatal("filtered frame leaked to the stream")
	}
	if dups != 2 {
		t.Fatalf("duplicated frame streamed %d times, want 2", dups)
	}
}

func TestConnWriterSlowClientCannotStall(t *testing.T) {
	// Regression: writes used to go to the socket synchronously under the
	// writer's mutex, so one stalled client blocked every bus broadcast.
	// net.Pipe has no buffering at all — the harshest possible peer: the
	// writer goroutine blocks on its very first write and stays blocked.
	server, client := net.Pipe()
	defer client.Close()
	w := newConnWriter(server)

	// Every enqueue must return promptly even though nothing is reading;
	// once the queue overflows, the connection is sacrificed instead.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < writerQueueDepth+8; i++ {
			w.enqueue("frame\n")
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("enqueue blocked on a stalled client")
	}

	// The overflow closed the pipe, which unblocks the writer goroutine;
	// close must therefore join it promptly.
	joined := make(chan struct{})
	go func() {
		w.close()
		close(joined)
	}()
	select {
	case <-joined:
	case <-time.After(5 * time.Second):
		t.Fatal("writer goroutine not joinable after overflow")
	}
}

func TestBridgeBroadcastSurvivesStalledClient(t *testing.T) {
	addr, _ := startVehicleBridge(t)

	// A client that reads its greeting and then never reads again.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	buf := make([]byte, 64)
	if _, err := stalled.Read(buf); err != nil {
		t.Fatal(err)
	}

	// A healthy client must keep receiving traffic while the stalled one
	// falls arbitrarily far behind.
	c := dial(t, addr)
	for i := 0; i < writerQueueDepth+64; i++ {
		c.send(t, "SEND 7E0#0100")
		// The broadcast echo precedes the OK reply; seeing both every
		// iteration proves the stream is still flowing.
		c.readUntil(t, func(line string) bool { return strings.Contains(line, "7E0#0100") })
		c.readUntil(t, func(line string) bool { return line == "OK" })
	}
}

func TestBridgeCloseIdempotent(t *testing.T) {
	p, _ := vehicle.ProfileByCar("Car M")
	clock := sim.NewClock(0)
	veh := vehicle.Build(p, clock)
	defer veh.Close()
	srv := NewServer(veh.Bus, clock)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
