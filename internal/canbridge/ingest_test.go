package canbridge

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dpreverser/internal/can"
)

// recordingSink collects everything one ingest session delivers.
type recordingSink struct {
	mu       sync.Mutex
	frames   []can.Frame
	advanced time.Duration
	closed   chan bool // receives the complete flag exactly once
}

func newRecordingSink() *recordingSink {
	return &recordingSink{closed: make(chan bool, 1)}
}

func (s *recordingSink) Frame(f can.Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames = append(s.frames, f)
	return nil
}

func (s *recordingSink) Advance(d time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanced += d
	return nil
}

func (s *recordingSink) Close(complete bool) { s.closed <- complete }

func (s *recordingSink) snapshot() []can.Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]can.Frame(nil), s.frames...)
}

func startIngest(t *testing.T, open func(string) (IngestSink, error)) (*IngestServer, string) {
	t.Helper()
	srv := NewIngestServer(open)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func waitClosed(t *testing.T, sink *recordingSink) bool {
	t.Helper()
	select {
	case complete := <-sink.closed:
		return complete
	case <-time.After(5 * time.Second):
		t.Fatal("sink never closed")
		return false
	}
}

func TestIngestSessionStampsAndFinalises(t *testing.T) {
	sink := newRecordingSink()
	_, addr := startIngest(t, func(token string) (IngestSink, error) {
		if token != "tok-1" {
			return nil, fmt.Errorf("no such token %q", token)
		}
		return sink, nil
	})

	c, err := DialStream(addr, "tok-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(can.MustFrame(0x7E0, []byte{0x01})); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(250 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(can.MustFrame(0x7E8, []byte{0x02})); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if complete := waitClosed(t, sink); !complete {
		t.Fatal("clean EOF reported as incomplete")
	}
	frames := sink.snapshot()
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	if frames[0].Timestamp != 0 {
		t.Fatalf("first frame at %v, want 0", frames[0].Timestamp)
	}
	if frames[1].Timestamp != 250*time.Millisecond {
		t.Fatalf("second frame at %v, want 250ms", frames[1].Timestamp)
	}
}

func TestIngestRejectsUnknownToken(t *testing.T) {
	_, addr := startIngest(t, func(token string) (IngestSink, error) {
		return nil, fmt.Errorf("no such token %q", token)
	})
	_, err := DialStream(addr, "bogus")
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ServerError", err)
	}
}

func TestIngestServerCloseTruncatesSessions(t *testing.T) {
	sink := newRecordingSink()
	srv, addr := startIngest(t, func(string) (IngestSink, error) { return sink, nil })

	c, err := DialStream(addr, "tok")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(can.MustFrame(0x100, []byte{0xAA})); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if complete := waitClosed(t, sink); complete {
		t.Fatal("server shutdown reported as a complete stream")
	}
}

func TestIngestRejectsStreamCommandsBeforeHello(t *testing.T) {
	_, addr := startIngest(t, func(string) (IngestSink, error) {
		t.Fatal("open called without a HELLO")
		return nil, nil
	})
	// Speak the raw protocol: skip the HELLO and SEND immediately.
	c := dial(t, addr)
	c.send(t, "SEND 123#00")
	line := c.readLine(t)
	if got, _ := Parse(line); got == nil {
		t.Fatalf("unparsable reply %q", line)
	} else if _, isErr := got.(MsgErr); !isErr {
		t.Fatalf("reply to early SEND = %q, want ERR", line)
	}
}
