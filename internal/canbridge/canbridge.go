// Package canbridge exposes a simulated vehicle's CAN bus over a TCP
// socket, in a line protocol built on the candump format:
//
//	server → client:  HELLO canbridge 1            greeting; traffic flows from here
//	client → server:  SEND 7E0#021003AAAAAAAAAA   inject a frame
//	client → server:  ADVANCE 500                 advance the virtual clock (ms)
//	server → client:  (000001.500000) 7E8#065002... every bus frame, as it happens
//
// The bridge is the repository's stand-in for plugging real tooling into
// the OBD port: an external program (any language) can drive the simulated
// car, sniff its traffic, and feed the capture to the reverse-engineering
// pipeline via can.ParseDump.
package canbridge

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"

	"dpreverser/internal/can"
	"dpreverser/internal/sim"
)

// Server bridges one bus/clock pair to TCP clients.
type Server struct {
	bus   *can.Bus
	clock *sim.Clock

	// filter, when set, rewrites each bus frame before it is streamed
	// to clients: it may suppress the frame (empty result), corrupt it,
	// or expand it into several. Calls are serialised by filterMu, so a
	// stateful filter (a fault injector) needs no locking of its own.
	filter   func(can.Frame) []can.Frame
	filterMu sync.Mutex

	mu          sync.Mutex
	listener    net.Listener
	conns       map[net.Conn]*connWriter
	closed      bool
	unsubscribe func()
	wg          sync.WaitGroup
}

// connWriter serialises writes to one client connection: streamed frames
// (from bus callbacks) interleave with OK/ERR replies (from the command
// loop) on the same socket.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

func (w *connWriter) write(text string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fmt.Fprint(w.conn, text)
}

// NewServer wraps a bus and its clock.
func NewServer(bus *can.Bus, clock *sim.Clock) *Server {
	return &Server{bus: bus, clock: clock, conns: map[net.Conn]*connWriter{}}
}

// SetFilter installs the stream filter. It must be called before Listen.
func (s *Server) SetFilter(f func(can.Frame) []can.Frame) { s.filter = f }

// Listen starts accepting clients on addr ("127.0.0.1:0" for an ephemeral
// port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("canbridge: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = l
	// One server-wide bus subscription feeds every client, so a
	// stateful filter sees each frame exactly once regardless of how
	// many clients are attached.
	s.unsubscribe = s.bus.Subscribe(s.broadcast)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

// broadcast streams one bus frame — after filtering — to every client.
func (s *Server) broadcast(f can.Frame) {
	frames := []can.Frame{f}
	if s.filter != nil {
		s.filterMu.Lock()
		frames = s.filter(f)
		s.filterMu.Unlock()
	}
	if len(frames) == 0 {
		return
	}
	text := can.Dump(frames)
	s.mu.Lock()
	writers := make([]*connWriter, 0, len(s.conns))
	for _, w := range s.conns {
		writers = append(writers, w)
	}
	s.mu.Unlock()
	for _, w := range writers {
		w.write(text)
	}
}

// Close stops the listener and disconnects every client.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	unsub := s.unsubscribe
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if unsub != nil {
		unsub()
	}
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	// Register, then greet, while holding the writer's lock: a broadcast
	// that picks up the new writer blocks until the HELLO is on the
	// wire, so a client that waits for HELLO is guaranteed to see all
	// subsequent traffic — and nothing before it.
	w := &connWriter{conn: conn}
	w.mu.Lock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		w.mu.Unlock()
		return
	}
	s.conns[conn] = w
	s.mu.Unlock()
	fmt.Fprintln(conn, Format(Greeting))
	w.mu.Unlock()

	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := s.handleCommand(line); err != nil {
			w.write(Format(MsgErr{Msg: err.Error()}) + "\n")
			continue
		}
		w.write(Format(MsgOK{}) + "\n")
	}
}

func (s *Server) handleCommand(line string) error {
	msg, err := Parse(line)
	if err != nil {
		return err
	}
	switch m := msg.(type) {
	case MsgSend:
		f := m.Frame
		f.Timestamp = s.clock.Now()
		s.bus.Send(f)
		return nil
	case MsgAdvance:
		s.clock.Advance(m.D)
		return nil
	default:
		return fmt.Errorf("canbridge: unexpected %q here", strings.Fields(line)[0])
	}
}
