// Package canbridge exposes a simulated vehicle's CAN bus over a TCP
// socket, in a line protocol built on the candump format:
//
//	server → client:  HELLO canbridge 1            greeting; traffic flows from here
//	client → server:  SEND 7E0#021003AAAAAAAAAA   inject a frame
//	client → server:  ADVANCE 500                 advance the virtual clock (ms)
//	server → client:  (000001.500000) 7E8#065002... every bus frame, as it happens
//
// The bridge is the repository's stand-in for plugging real tooling into
// the OBD port: an external program (any language) can drive the simulated
// car, sniff its traffic, and feed the capture to the reverse-engineering
// pipeline via can.ParseDump.
package canbridge

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"

	"dpreverser/internal/can"
	"dpreverser/internal/sim"
)

// Server bridges one bus/clock pair to TCP clients.
type Server struct {
	bus   *can.Bus
	clock *sim.Clock

	// filter, when set, rewrites each bus frame before it is streamed
	// to clients: it may suppress the frame (empty result), corrupt it,
	// or expand it into several. Calls are serialised by filterMu, so a
	// stateful filter (a fault injector) needs no locking of its own.
	filter   func(can.Frame) []can.Frame
	filterMu sync.Mutex

	mu          sync.Mutex
	listener    net.Listener
	conns       map[net.Conn]*connWriter
	closed      bool
	unsubscribe func()
	wg          sync.WaitGroup
}

// writerQueueDepth bounds each client's outbound queue. A client that
// falls this many messages behind is disconnected rather than allowed to
// exert backpressure on the bus.
const writerQueueDepth = 256

// connWriter decouples producers from one client socket: streamed frames
// (from bus callbacks) and OK/ERR replies (from the command loop) are
// enqueued without blocking, and a dedicated goroutine — the only thing
// that ever writes to the connection — drains the FIFO queue onto the
// wire. A slow or stalled client therefore cannot stall a bus broadcast
// or any other client; once its queue overflows, its connection is
// closed and the serve loop tears it down.
type connWriter struct {
	conn net.Conn
	ch   chan string
	stop chan struct{} // closed by the owning serve loop on teardown
	done chan struct{} // closed by the writer goroutine on exit
}

func newConnWriter(conn net.Conn) *connWriter {
	w := &connWriter{
		conn: conn,
		ch:   make(chan string, writerQueueDepth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go w.run()
	return w
}

// run is the per-connection writer goroutine. It exits on close(w.stop)
// or on the first write error (peer gone); the owning serve loop joins it
// through w.done.
func (w *connWriter) run() {
	defer close(w.done)
	for {
		select {
		case text := <-w.ch:
			if _, err := fmt.Fprint(w.conn, text); err != nil {
				return
			}
		case <-w.stop:
			return
		}
	}
}

// enqueue hands text to the writer goroutine without ever blocking the
// caller. On a full queue the client is beyond saving: the connection is
// closed, which unblocks the writer goroutine and fails the serve loop's
// reads.
func (w *connWriter) enqueue(text string) {
	select {
	case w.ch <- text:
	case <-w.stop:
	default:
		w.conn.Close()
	}
}

// close stops the writer goroutine and joins it.
func (w *connWriter) close() {
	close(w.stop)
	<-w.done
}

// NewServer wraps a bus and its clock.
func NewServer(bus *can.Bus, clock *sim.Clock) *Server {
	return &Server{bus: bus, clock: clock, conns: map[net.Conn]*connWriter{}}
}

// SetFilter installs the stream filter. It must be called before Listen.
func (s *Server) SetFilter(f func(can.Frame) []can.Frame) { s.filter = f }

// Listen starts accepting clients on addr ("127.0.0.1:0" for an ephemeral
// port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("canbridge: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = l
	// One server-wide bus subscription feeds every client, so a
	// stateful filter sees each frame exactly once regardless of how
	// many clients are attached.
	s.unsubscribe = s.bus.Subscribe(s.broadcast)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

// broadcast streams one bus frame — after filtering — to every client.
func (s *Server) broadcast(f can.Frame) {
	frames := []can.Frame{f}
	if s.filter != nil {
		s.filterMu.Lock()
		// filterMu exists solely to serialise this call: SetFilter's
		// documented contract is that a stateful filter needs no locking
		// of its own. The callback is trusted not to block — it rewrites
		// frames, nothing more — and holds no other server lock here.
		frames = s.filter(f) //dplint:allow lockhold filterMu's one job is serialising this documented callback
		s.filterMu.Unlock()
	}
	if len(frames) == 0 {
		return
	}
	text := can.Dump(frames)
	s.mu.Lock()
	writers := make([]*connWriter, 0, len(s.conns))
	for _, w := range s.conns {
		writers = append(writers, w)
	}
	s.mu.Unlock()
	// enqueue never blocks: a client whose queue is full is disconnected,
	// so one stalled reader cannot hold up the bus or its peers.
	for _, w := range writers {
		w.enqueue(text)
	}
}

// Close stops the listener and disconnects every client.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	unsub := s.unsubscribe
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if unsub != nil {
		unsub()
	}
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	w := newConnWriter(conn)
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		// Close the connection before joining the writer: a writer blocked
		// mid-write to a stalled peer only unblocks once the socket dies.
		conn.Close()
		w.close()
	}()

	// Greet, then register: the greeting and all subsequent broadcasts
	// flow through the writer's FIFO queue, so a client that waits for
	// HELLO is guaranteed to see every frame broadcast after registration
	// — and nothing before it.
	w.enqueue(Format(Greeting) + "\n")
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[conn] = w
	s.mu.Unlock()

	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := s.handleCommand(line); err != nil {
			w.enqueue(Format(MsgErr{Msg: err.Error()}) + "\n")
			continue
		}
		w.enqueue(Format(MsgOK{}) + "\n")
	}
}

func (s *Server) handleCommand(line string) error {
	msg, err := Parse(line)
	if err != nil {
		return err
	}
	switch m := msg.(type) {
	case MsgSend:
		f := m.Frame
		f.Timestamp = s.clock.Now()
		s.bus.Send(f)
		return nil
	case MsgAdvance:
		s.clock.Advance(m.D)
		return nil
	default:
		return fmt.Errorf("canbridge: unexpected %q here", strings.Fields(line)[0])
	}
}
