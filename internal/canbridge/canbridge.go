// Package canbridge exposes a simulated vehicle's CAN bus over a TCP
// socket, in a line protocol built on the candump format:
//
//	server → client:  HELLO canbridge 1            greeting; traffic flows from here
//	client → server:  SEND 7E0#021003AAAAAAAAAA   inject a frame
//	client → server:  ADVANCE 500                 advance the virtual clock (ms)
//	server → client:  (000001.500000) 7E8#065002... every bus frame, as it happens
//
// The bridge is the repository's stand-in for plugging real tooling into
// the OBD port: an external program (any language) can drive the simulated
// car, sniff its traffic, and feed the capture to the reverse-engineering
// pipeline via can.ParseDump.
package canbridge

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/sim"
)

// Server bridges one bus/clock pair to TCP clients.
type Server struct {
	bus   *can.Bus
	clock *sim.Clock

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps a bus and its clock.
func NewServer(bus *can.Bus, clock *sim.Clock) *Server {
	return &Server{bus: bus, clock: clock, conns: map[net.Conn]bool{}}
}

// Listen starts accepting clients on addr ("127.0.0.1:0" for an ephemeral
// port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("canbridge: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

// Close stops the listener and disconnects every client.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	// Stream every bus frame to the client. Writes are serialised through
	// a mutex because frames may fire from this connection's own SEND
	// processing while another client's SEND also fans out.
	var writeMu sync.Mutex
	unsubscribe := s.bus.Subscribe(func(f can.Frame) {
		writeMu.Lock()
		defer writeMu.Unlock()
		fmt.Fprint(conn, can.Dump([]can.Frame{f}))
	})
	defer unsubscribe()

	// Greet after the subscription is live, so a client that waits for
	// HELLO is guaranteed to see all subsequent traffic.
	writeMu.Lock()
	fmt.Fprintln(conn, "HELLO canbridge 1")
	writeMu.Unlock()

	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := s.handleCommand(line); err != nil {
			writeMu.Lock()
			fmt.Fprintf(conn, "ERR %v\n", err)
			writeMu.Unlock()
			continue
		}
		writeMu.Lock()
		fmt.Fprintln(conn, "OK")
		writeMu.Unlock()
	}
}

func (s *Server) handleCommand(line string) error {
	verb, rest, _ := strings.Cut(line, " ")
	switch strings.ToUpper(verb) {
	case "SEND":
		f, err := can.ParseDumpLine(fmt.Sprintf("(%.6f) %s", s.clock.Now().Seconds(), strings.TrimSpace(rest)))
		if err != nil {
			return err
		}
		s.bus.Send(f)
		return nil
	case "ADVANCE":
		ms, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil || ms < 0 {
			return fmt.Errorf("canbridge: bad ADVANCE argument %q", rest)
		}
		s.clock.Advance(time.Duration(ms) * time.Millisecond)
		return nil
	default:
		return fmt.Errorf("canbridge: unknown command %q", verb)
	}
}
