// Package regress implements the two baseline formula-inference algorithms
// the paper compares against GP in §4.4 / Tables 8 and 10:
//
//   - multivariate linear regression (the LibreCAN approach):
//     Y = β0 + β1·X0 + β2·X1 + …, fitted by ordinary least squares;
//   - polynomial curve fitting: degree-2 features including cross terms,
//     Y = β0 + Σβi·Xi + Σβij·Xi·Xj, also by least squares.
//
// Both return their fit as a gp.Node so the experiment harness scores all
// three algorithms with one equivalence check. Both are exact closed-form
// solvers — which is why Table 8 shows them running in well under a
// millisecond while GP takes seconds — and both use plain (untrimmed)
// least squares, which is why Table 10 shows them collapsing under OCR
// outliers and non-linear formulas.
package regress

import (
	"errors"
	"fmt"
	"math"

	"dpreverser/internal/gp"
)

// Package errors.
var (
	ErrEmptyDataset = errors.New("regress: empty dataset")
	ErrSingular     = errors.New("regress: normal equations are singular")
	ErrBadDegree    = errors.New("regress: unsupported polynomial degree")
)

// LinearResult is a fitted linear model.
type LinearResult struct {
	// Intercept is β0.
	Intercept float64
	// Coeffs holds βi for each input variable.
	Coeffs []float64
	// Tree is the model as an expression tree.
	Tree *gp.Node
	// MAE is the model's mean absolute error on the training data.
	MAE float64
}

// LinearFit fits Y = β0 + Σ βi·Xi by ordinary least squares.
func LinearFit(d *gp.Dataset) (LinearResult, error) {
	if err := d.Validate(); err != nil {
		return LinearResult{}, fmt.Errorf("linear fit: %w", err)
	}
	nv := d.NumVars()
	features := func(row []float64) []float64 {
		f := make([]float64, 1, 1+nv)
		f[0] = 1
		return append(f, row...)
	}
	beta, err := leastSquares(d, features, 1+nv)
	if err != nil {
		return LinearResult{}, err
	}
	res := LinearResult{Intercept: beta[0], Coeffs: beta[1:]}
	tree := gp.NewConst(beta[0])
	for i, c := range beta[1:] {
		term := gp.NewBinary(gp.OpMul, gp.NewConst(c), gp.NewVar(i))
		tree = gp.NewBinary(gp.OpAdd, tree, term)
	}
	res.Tree = gp.Simplify(tree)
	res.MAE = gp.MAE(res.Tree, d)
	return res, nil
}

// PolyResult is a fitted degree-2 polynomial model.
type PolyResult struct {
	// Tree is the model as an expression tree.
	Tree *gp.Node
	// Coeffs lists the fitted coefficients in feature order (see
	// PolyFeatureNames).
	Coeffs []float64
	// MAE is the training mean absolute error.
	MAE float64
}

// polyFeatures builds [1, X0.., Xi*Xj (i<=j)] for one row.
func polyFeatures(row []float64) []float64 {
	nv := len(row)
	f := make([]float64, 0, 1+nv+nv*(nv+1)/2)
	f = append(f, 1)
	f = append(f, row...)
	for i := 0; i < nv; i++ {
		for j := i; j < nv; j++ {
			f = append(f, row[i]*row[j])
		}
	}
	return f
}

// PolyFeatureNames names the degree-2 feature columns for nv variables.
func PolyFeatureNames(nv int) []string {
	names := []string{"1"}
	for i := 0; i < nv; i++ {
		names = append(names, fmt.Sprintf("X%d", i))
	}
	for i := 0; i < nv; i++ {
		for j := i; j < nv; j++ {
			names = append(names, fmt.Sprintf("X%d*X%d", i, j))
		}
	}
	return names
}

// PolyFit fits a full degree-2 polynomial (with cross terms) by least
// squares. Only degree 2 is supported, matching the paper's baseline.
func PolyFit(d *gp.Dataset, degree int) (PolyResult, error) {
	if degree != 2 {
		return PolyResult{}, fmt.Errorf("%w: %d", ErrBadDegree, degree)
	}
	if err := d.Validate(); err != nil {
		return PolyResult{}, fmt.Errorf("poly fit: %w", err)
	}
	nv := d.NumVars()
	nf := 1 + nv + nv*(nv+1)/2
	beta, err := leastSquares(d, polyFeatures, nf)
	if err != nil {
		return PolyResult{}, err
	}
	// Assemble the tree in feature order.
	tree := gp.NewConst(beta[0])
	idx := 1
	for i := 0; i < nv; i++ {
		tree = addTerm(tree, beta[idx], gp.NewVar(i))
		idx++
	}
	for i := 0; i < nv; i++ {
		for j := i; j < nv; j++ {
			tree = addTerm(tree, beta[idx], gp.NewBinary(gp.OpMul, gp.NewVar(i), gp.NewVar(j)))
			idx++
		}
	}
	res := PolyResult{Coeffs: beta, Tree: gp.Simplify(tree)}
	res.MAE = gp.MAE(res.Tree, d)
	return res, nil
}

func addTerm(tree *gp.Node, coeff float64, expr *gp.Node) *gp.Node {
	return gp.NewBinary(gp.OpAdd, tree, gp.NewBinary(gp.OpMul, gp.NewConst(coeff), expr))
}

// leastSquares solves min ‖Φβ − y‖² via the normal equations ΦᵀΦβ = Φᵀy
// with Gaussian elimination and partial pivoting. Collinear designs fail
// with ErrSingular — and they are common in diagnostic captures: whenever a
// KWP scale byte never varies ("the values of X0 are all 0x64", §4.3), the
// X0 column is a multiple of the intercept column. DP-Reverser's GP handles
// that case by simply not using the frozen variable; the naive regression
// baseline cannot, which is a large part of why the paper's Table 10 shows
// linear regression recovering only 2 of Car K's 41 formulas.
func leastSquares(d *gp.Dataset, features func([]float64) []float64, nf int) ([]float64, error) {
	ata := make([][]float64, nf)
	for i := range ata {
		ata[i] = make([]float64, nf)
	}
	aty := make([]float64, nf)
	for r, row := range d.X {
		f := features(row)
		if len(f) != nf {
			return nil, fmt.Errorf("regress: feature width %d, want %d", len(f), nf)
		}
		for i := 0; i < nf; i++ {
			aty[i] += f[i] * d.Y[r]
			for j := 0; j < nf; j++ {
				ata[i][j] += f[i] * f[j]
			}
		}
	}
	return solve(ata, aty)
}

// solve performs in-place Gaussian elimination with partial pivoting.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-9 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			factor := a[r][col] / a[col][col]
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	// Back-substitute.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrSingular
		}
	}
	return x, nil
}
