package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpreverser/internal/gp"
)

func grid(f func(a, b float64) float64, x0s, x1s []float64) *gp.Dataset {
	d := &gp.Dataset{}
	for _, a := range x0s {
		for _, b := range x1s {
			d.X = append(d.X, []float64{a, b})
			d.Y = append(d.Y, f(a, b))
		}
	}
	return d
}

func seq(from, to, step float64) []float64 {
	var out []float64
	for v := from; v <= to; v += step {
		out = append(out, v)
	}
	return out
}

func TestLinearFitExact(t *testing.T) {
	// Y = 3*X0 - 2*X1 + 5.
	d := grid(func(a, b float64) float64 { return 3*a - 2*b + 5 }, seq(0, 10, 1), seq(0, 5, 1))
	res, err := LinearFit(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Intercept-5) > 1e-6 ||
		math.Abs(res.Coeffs[0]-3) > 1e-6 ||
		math.Abs(res.Coeffs[1]+2) > 1e-6 {
		t.Fatalf("fit = %+v", res)
	}
	if res.MAE > 1e-6 {
		t.Fatalf("MAE = %v on exact linear data", res.MAE)
	}
}

func TestLinearFitCannotExpressProduct(t *testing.T) {
	// Y = X0*X1/5 — the paper's engine-speed formula. Linear regression
	// must leave substantial residual error (§4.4's point).
	d := grid(func(a, b float64) float64 { return a * b / 5 }, seq(100, 250, 10), seq(5, 50, 5))
	res, err := LinearFit(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAE < 10 {
		t.Fatalf("linear MAE = %v on product data, expected large residual", res.MAE)
	}
}

func TestLinearFitSensitiveToOutliers(t *testing.T) {
	// Same corruption as the GP robustness test: plain least squares must
	// be dragged far off while GP (tested in internal/gp) stays put.
	d := &gp.Dataset{}
	for x := 1.0; x <= 100; x++ {
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 2*x)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < len(d.Y); i += 20 {
		d.Y[i] = rng.Float64() * 1000
	}
	res, err := LinearFit(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Coeffs[0]-2) < 0.05 && math.Abs(res.Intercept) < 5 {
		t.Fatalf("least squares unexpectedly robust: %+v", res)
	}
}

func TestLinearFitConstantColumnSingular(t *testing.T) {
	// X0 pinned at 100 (the paper's vehicle-speed capture): the X0 column
	// is a multiple of the intercept, so the naive normal-equations solver
	// must report a singular system — the failure mode behind the paper's
	// Car K baseline collapse (2/41 correct).
	d := &gp.Dataset{}
	for x1 := 0.0; x1 <= 60; x1 += 2 {
		d.X = append(d.X, []float64{100, x1})
		d.Y = append(d.Y, x1)
	}
	if _, err := LinearFit(d); !errors.Is(err, ErrSingular) {
		t.Fatalf("constant column: err = %v, want ErrSingular", err)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit(&gp.Dataset{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestPolyFitExactQuadratic(t *testing.T) {
	// Y = X0² + 2*X0*X1 - X1 + 3.
	d := grid(func(a, b float64) float64 { return a*a + 2*a*b - b + 3 }, seq(-5, 5, 1), seq(-3, 3, 1))
	res, err := PolyFit(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAE > 1e-5 {
		t.Fatalf("MAE = %v on exact quadratic data (tree %q)", res.MAE, res.Tree)
	}
}

func TestPolyFitRecoversProduct(t *testing.T) {
	// Y = X0*X1/5 is representable by the cross term; the fit should be
	// near-exact on clean data (Table 10 shows poly beating linear on some
	// cars for exactly this reason).
	d := grid(func(a, b float64) float64 { return a * b / 5 }, seq(100, 250, 10), seq(5, 50, 5))
	res, err := PolyFit(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAE > 1 {
		t.Fatalf("poly MAE = %v on product data", res.MAE)
	}
}

func TestPolyFitCannotExpressSqrt(t *testing.T) {
	// A non-polynomial formula leaves residual error over a wide domain.
	d := &gp.Dataset{}
	for x := 0.0; x <= 400; x += 2 {
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 40*math.Sqrt(x))
	}
	res, err := PolyFit(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAE < 5 {
		t.Fatalf("poly MAE = %v on sqrt data, expected residual", res.MAE)
	}
}

func TestPolyFitDegreeValidation(t *testing.T) {
	d := &gp.Dataset{X: [][]float64{{1}}, Y: []float64{1}}
	if _, err := PolyFit(d, 3); !errors.Is(err, ErrBadDegree) {
		t.Fatalf("degree 3: %v", err)
	}
}

func TestPolyFeatureNames(t *testing.T) {
	names := PolyFeatureNames(2)
	want := []string{"1", "X0", "X1", "X0*X0", "X0*X1", "X1*X1"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	if _, err := solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular system: %v", err)
	}
}

// Property: linear fit recovers arbitrary affine relations exactly on
// noise-free data with enough spread.
func TestLinearFitRecoveryProperty(t *testing.T) {
	f := func(rawB0, rawB1, rawC int16) bool {
		b0 := float64(rawB0) / 100
		b1 := float64(rawB1) / 100
		c := float64(rawC) / 100
		d := &gp.Dataset{}
		for x0 := 0.0; x0 < 10; x0++ {
			for x1 := 0.0; x1 < 5; x1++ {
				d.X = append(d.X, []float64{x0, x1})
				d.Y = append(d.Y, b0*x0+b1*x1+c)
			}
		}
		res, err := LinearFit(d)
		if err != nil {
			return false
		}
		return res.MAE < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the poly tree and the coefficient vector agree — evaluating the
// tree equals the dot product of features and coefficients.
func TestPolyTreeMatchesCoeffsProperty(t *testing.T) {
	d := grid(func(a, b float64) float64 { return a*b + a - 3 }, seq(0, 6, 1), seq(0, 4, 1))
	res, err := PolyFit(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a8, b8 int8) bool {
		row := []float64{float64(a8) / 4, float64(b8) / 4}
		feats := polyFeatures(row)
		dot := 0.0
		for i, c := range res.Coeffs {
			dot += c * feats[i]
		}
		return math.Abs(dot-res.Tree.Eval(row)) < 1e-6*(1+math.Abs(dot))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
