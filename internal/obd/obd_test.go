package obd

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPIDsSortedAndComplete(t *testing.T) {
	pids := PIDs()
	want := []byte{0x04, 0x05, 0x0B, 0x0C, 0x0D, 0x11, 0x2F}
	if len(pids) != len(want) {
		t.Fatalf("PIDs() = % X, want % X", pids, want)
	}
	for i := range want {
		if pids[i] != want[i] {
			t.Fatalf("PIDs() = % X, want % X", pids, want)
		}
	}
}

func TestBuildParseRequest(t *testing.T) {
	req := BuildRequest(PIDEngineRPM)
	if !bytes.Equal(req, []byte{0x01, 0x0C}) {
		t.Fatalf("request = % X", req)
	}
	pid, err := ParseRequest(req)
	if err != nil || pid != PIDEngineRPM {
		t.Fatalf("parsed = %#x, %v", pid, err)
	}
	if _, err := ParseRequest([]byte{0x01}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short: %v", err)
	}
	if _, err := ParseRequest([]byte{0x09, 0x02}); !errors.Is(err, ErrNotMode01) {
		t.Fatalf("wrong mode: %v", err)
	}
}

func TestTable5Formulas(t *testing.T) {
	// Table 5 ground truth spot checks.
	cases := []struct {
		pid  byte
		data []byte
		want float64
	}{
		{PIDThrottlePosition, []byte{0xFF}, 100},
		{PIDEngineLoad, []byte{0x80}, 128 / 2.55},
		{PIDFuelTankLevel, []byte{100}, 39.2},
		{PIDEngineRPM, []byte{0x1A, 0xF8}, (256*0x1A + 0xF8) / 4.0},
		{PIDVehicleSpeed, []byte{33}, 33},
		{PIDCoolantTemp, []byte{0xA0}, 120},
		{PIDIntakeManifoldKPa, []byte{35}, 35},
	}
	for _, c := range cases {
		msg := append([]byte{0x41, c.pid}, c.data...)
		pid, v, err := ParseResponse(msg)
		if err != nil {
			t.Fatalf("pid %#02x: %v", c.pid, err)
		}
		if pid != c.pid || math.Abs(v-c.want) > 1e-9 {
			t.Fatalf("pid %#02x: decode = %v, want %v", c.pid, v, c.want)
		}
	}
}

func TestBuildResponseAndErrors(t *testing.T) {
	resp, err := BuildResponse(PIDVehicleSpeed, 33)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte{0x41, 0x0D, 33}) {
		t.Fatalf("response = % X", resp)
	}
	if _, err := BuildResponse(0xEE, 0); !errors.Is(err, ErrUnknownPID) {
		t.Fatalf("unknown PID: %v", err)
	}
}

func TestParseResponseErrors(t *testing.T) {
	if _, _, err := ParseResponse([]byte{0x41, 0x0D}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short: %v", err)
	}
	if _, _, err := ParseResponse([]byte{0x62, 0x0D, 33}); !errors.Is(err, ErrNotMode01) {
		t.Fatalf("wrong sid: %v", err)
	}
	if _, _, err := ParseResponse([]byte{0x41, 0xEE, 33}); !errors.Is(err, ErrUnknownPID) {
		t.Fatalf("unknown pid: %v", err)
	}
	if _, _, err := ParseResponse([]byte{0x41, 0x0C, 33}); !errors.Is(err, ErrBadWidth) {
		t.Fatalf("rpm with 1 byte: %v", err)
	}
}

// Property: Encode → Decode round-trips within each PID's quantisation.
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	quant := map[byte]float64{
		PIDEngineLoad:        1 / 2.55,
		PIDCoolantTemp:       1,
		PIDIntakeManifoldKPa: 1,
		PIDEngineRPM:         0.25,
		PIDVehicleSpeed:      1,
		PIDThrottlePosition:  1 / 2.55,
		PIDFuelTankLevel:     0.392,
	}
	f := func(raw uint16, pidIdx uint8) bool {
		pids := PIDs()
		pid := pids[int(pidIdx)%len(pids)]
		spec, _ := Lookup(pid)
		// Map raw onto the PID's physical range.
		v := spec.Min + (spec.Max-spec.Min)*float64(raw)/65535.0
		resp, err := BuildResponse(pid, v)
		if err != nil {
			return false
		}
		_, got, err := ParseResponse(resp)
		if err != nil {
			return false
		}
		return math.Abs(got-v) <= quant[pid]/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupSpecsConsistent(t *testing.T) {
	for _, pid := range PIDs() {
		spec, ok := Lookup(pid)
		if !ok {
			t.Fatalf("Lookup(%#02x) missing", pid)
		}
		if spec.PID != pid {
			t.Fatalf("spec.PID = %#02x, want %#02x", spec.PID, pid)
		}
		if spec.Width < 1 || spec.Width > 2 {
			t.Fatalf("pid %#02x width %d", pid, spec.Width)
		}
		if spec.Name == "" || spec.Formula == "" {
			t.Fatalf("pid %#02x missing name/formula", pid)
		}
		if got := len(spec.Encode(spec.Min)); got != spec.Width {
			t.Fatalf("pid %#02x encode width %d != %d", pid, got, spec.Width)
		}
	}
}
