// Package obd implements the OBD-II (SAE J1979 / ISO 15031) mode-01 live
// data service. The paper does not reverse engineer OBD-II — its formulas
// are standardised — but uses it in two load-bearing ways this package
// supports:
//
//   - as ground truth for validating the formula-inference pipeline
//     (Table 5: seven PIDs whose J1979 formulas are known exactly), and
//   - as the timestamp-alignment anchor between CAN captures and UI video
//     (§9.4 method 2: decode OBD-II responses whose formulas are known,
//     find the same value on screen, and measure the clock offset).
package obd

import (
	"errors"
	"fmt"
	"math"
)

// Mode 01 request/response service bytes.
const (
	ModeCurrentData byte = 0x01
	// ResponseSID is the positive-response SID for mode 01.
	ResponseSID byte = 0x41
)

// Functional and physical addressing IDs on 11-bit CAN.
const (
	// FunctionalRequestID is the broadcast request ID (0x7DF).
	FunctionalRequestID uint32 = 0x7DF
	// FirstResponseID is the first ECU response ID (0x7E8).
	FirstResponseID uint32 = 0x7E8
)

// The seven Table 5 PIDs.
const (
	PIDEngineLoad        byte = 0x04
	PIDCoolantTemp       byte = 0x05
	PIDIntakeManifoldKPa byte = 0x0B
	PIDEngineRPM         byte = 0x0C
	PIDVehicleSpeed      byte = 0x0D
	PIDThrottlePosition  byte = 0x11
	PIDFuelTankLevel     byte = 0x2F
)

// Codec errors.
var (
	ErrTooShort   = errors.New("obd: message too short")
	ErrNotMode01  = errors.New("obd: message is not a mode-01 exchange")
	ErrUnknownPID = errors.New("obd: unsupported PID")
	ErrBadWidth   = errors.New("obd: response data width mismatch")
)

// PIDSpec describes one mode-01 parameter: its wire width and the J1979
// formula in both directions.
type PIDSpec struct {
	PID   byte
	Name  string
	Unit  string
	Width int
	// Formula is the human-readable decode formula over the data bytes
	// A (X0) and B (X1), as printed in Table 5's ground-truth column.
	Formula string
	// Decode converts raw data bytes to the physical value.
	Decode func(data []byte) float64
	// Encode converts a physical value to raw data bytes (the vehicle
	// simulator's direction).
	Encode func(v float64) []byte
	// Min and Max bound the physical value (used by the OCR range filter,
	// which the paper seeds from public PID tables).
	Min, Max float64
}

func clampByte(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(math.Round(v))
}

// pidTable is the SAE J1979 registry for the PIDs the paper evaluates.
var pidTable = map[byte]PIDSpec{
	PIDEngineLoad: {
		PID: PIDEngineLoad, Name: "Calculated Engine Load", Unit: "%", Width: 1,
		Formula: "Y = X/2.55",
		Decode:  func(d []byte) float64 { return float64(d[0]) / 2.55 },
		Encode:  func(v float64) []byte { return []byte{clampByte(v * 2.55)} },
		Min:     0, Max: 100,
	},
	PIDCoolantTemp: {
		PID: PIDCoolantTemp, Name: "Engine Coolant Temperature", Unit: "°C", Width: 1,
		Formula: "Y = X-40",
		Decode:  func(d []byte) float64 { return float64(d[0]) - 40 },
		Encode:  func(v float64) []byte { return []byte{clampByte(v + 40)} },
		Min:     -40, Max: 215,
	},
	PIDIntakeManifoldKPa: {
		PID: PIDIntakeManifoldKPa, Name: "Intake Manifold Absolute Pressure", Unit: "kPa", Width: 1,
		Formula: "Y = X",
		Decode:  func(d []byte) float64 { return float64(d[0]) },
		Encode:  func(v float64) []byte { return []byte{clampByte(v)} },
		Min:     0, Max: 255,
	},
	PIDEngineRPM: {
		PID: PIDEngineRPM, Name: "Engine Speed", Unit: "rpm", Width: 2,
		Formula: "Y = (256*X0+X1)/4",
		Decode:  func(d []byte) float64 { return (256*float64(d[0]) + float64(d[1])) / 4 },
		Encode: func(v float64) []byte {
			raw := int(math.Round(v * 4))
			if raw < 0 {
				raw = 0
			}
			if raw > 0xFFFF {
				raw = 0xFFFF
			}
			return []byte{byte(raw >> 8), byte(raw)}
		},
		Min: 0, Max: 16383.75,
	},
	PIDVehicleSpeed: {
		PID: PIDVehicleSpeed, Name: "Vehicle Speed", Unit: "km/h", Width: 1,
		Formula: "Y = X",
		Decode:  func(d []byte) float64 { return float64(d[0]) },
		Encode:  func(v float64) []byte { return []byte{clampByte(v)} },
		Min:     0, Max: 255,
	},
	PIDThrottlePosition: {
		PID: PIDThrottlePosition, Name: "Absolute Throttle Position", Unit: "%", Width: 1,
		Formula: "Y = X/2.55",
		Decode:  func(d []byte) float64 { return float64(d[0]) / 2.55 },
		Encode:  func(v float64) []byte { return []byte{clampByte(v * 2.55)} },
		Min:     0, Max: 100,
	},
	PIDFuelTankLevel: {
		PID: PIDFuelTankLevel, Name: "Fuel Tank Level Input", Unit: "%", Width: 1,
		Formula: "Y = 0.392*X",
		Decode:  func(d []byte) float64 { return 0.392 * float64(d[0]) },
		Encode:  func(v float64) []byte { return []byte{clampByte(v / 0.392)} },
		Min:     0, Max: 100,
	},
}

// Lookup returns the spec for pid.
func Lookup(pid byte) (PIDSpec, bool) {
	s, ok := pidTable[pid]
	return s, ok
}

// PIDs lists the supported PIDs in ascending order.
func PIDs() []byte {
	out := make([]byte, 0, len(pidTable))
	for pid := range pidTable {
		out = append(out, pid)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// BuildRequest builds a mode-01 request: "01 {PID}".
func BuildRequest(pid byte) []byte {
	return []byte{ModeCurrentData, pid}
}

// ParseRequest decodes a mode-01 request.
func ParseRequest(msg []byte) (pid byte, err error) {
	if len(msg) < 2 {
		return 0, ErrTooShort
	}
	if msg[0] != ModeCurrentData {
		return 0, fmt.Errorf("%w: mode %#02x", ErrNotMode01, msg[0])
	}
	return msg[1], nil
}

// BuildResponse encodes a physical value as "41 {PID} {data}".
func BuildResponse(pid byte, value float64) ([]byte, error) {
	spec, ok := pidTable[pid]
	if !ok {
		return nil, fmt.Errorf("%w: %#02x", ErrUnknownPID, pid)
	}
	out := []byte{ResponseSID, pid}
	return append(out, spec.Encode(value)...), nil
}

// ParseResponse decodes "41 {PID} {data}" to the physical value using the
// standard formula.
func ParseResponse(msg []byte) (pid byte, value float64, err error) {
	if len(msg) < 3 {
		return 0, 0, ErrTooShort
	}
	if msg[0] != ResponseSID {
		return 0, 0, fmt.Errorf("%w: sid %#02x", ErrNotMode01, msg[0])
	}
	pid = msg[1]
	spec, ok := pidTable[pid]
	if !ok {
		return pid, 0, fmt.Errorf("%w: %#02x", ErrUnknownPID, pid)
	}
	data := msg[2:]
	if len(data) != spec.Width {
		return pid, 0, fmt.Errorf("%w: pid %#02x got %d bytes want %d", ErrBadWidth, pid, len(data), spec.Width)
	}
	return pid, spec.Decode(data), nil
}
