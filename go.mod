module dpreverser

go 1.22
